//! The online driver — Algorithm 1 (`ProcessQuery`) of the paper.
//!
//! For every incoming query the driver:
//!
//! 1. computes the possible **rewritings** against every tracked view
//!    (materialized or not) via signature matching and, for partitioned
//!    views, Algorithm-2 fragment covers;
//! 2. **updates statistics** — every view/fragment that could answer the
//!    query records a (potential) benefit event;
//! 3. picks the **cheapest rewriting** among those backed by the pool (or
//!    the original plan);
//! 4. derives **view candidates** (Definition 6) and **partition candidates**
//!    (Definition 7) from the chosen plan;
//! 5. runs **selection** — admission filters (`COST ≤ B`), Φ-ranked greedy
//!    knapsack under `Smax` — deciding what to materialize and what to evict;
//! 6. executes the (instrumented) plan, materializing the selected views and
//!    fragments as a by-product (only the write/repartition overhead is
//!    charged to the query, §7.2);
//! 7. replaces estimated sizes/costs with measured ones.

use std::collections::BTreeSet;
use std::sync::Arc;

use deepsea_engine::catalog::Catalog;
use deepsea_engine::cost::CostEstimator;
use deepsea_engine::exec::{execute, ExecError, ExecMetrics};
use deepsea_engine::plan::{LogicalPlan, ViewScanInfo};
use deepsea_engine::rewrite::rewrite_with_view;
use deepsea_engine::signature::{matches, Compensation, Signature};
use deepsea_engine::subquery::{all_subplans, view_candidate_subplans};
use deepsea_engine::ClusterSim;
use deepsea_relation::Table;
use deepsea_storage::{BlockConfig, FileId, SimFs};

use crate::candidates::{clamp_to_domain, partition_candidates};
use crate::config::DeepSeaConfig;
use crate::filter_tree::ViewId;
use crate::fragment::FragmentId;
use crate::interval::Interval;
use crate::matching::partition_matching;
use crate::policy::PartitionPolicy;
use crate::registry::{PartitionState, ViewRegistry};
use crate::selection::{
    apply_size_bounds, equi_depth_intervals, select_configuration, CandidateKind, RankedItem,
};
use crate::stats::LogicalTime;

/// The result of processing one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query's result table.
    pub result: Table,
    /// Total simulated elapsed seconds charged to this query
    /// (`query_secs + creation_secs`).
    pub elapsed_secs: f64,
    /// Execution time of the (possibly rewritten) query.
    pub query_secs: f64,
    /// Overhead of materialization / repartitioning performed by this query.
    pub creation_secs: f64,
    /// Name of the view used to answer the query, if any.
    pub used_view: Option<String>,
    /// Human-readable descriptions of views/fragments materialized.
    pub materialized: Vec<String>,
    /// Human-readable descriptions of views/fragments evicted.
    pub evicted: Vec<String>,
    /// Execution metrics of the chosen plan.
    pub metrics: ExecMetrics,
}

/// A matched (sub)query/view pair.
struct MatchHit {
    path: Vec<usize>,
    view: ViewId,
    comp: Compensation,
    /// Estimated cost of computing the subquery from scratch.
    sub_cost: f64,
    /// Fragment files to scan if the view is materialized and covers the
    /// needed range.
    access: Option<Access>,
}

struct Access {
    files: Vec<FileId>,
    bytes: u64,
}

/// A materialized source fragment: id, interval, file, size.
type SourceFrag = (FragmentId, Interval, FileId, u64);

/// Accumulated I/O of the materializations a query performs; converted to
/// seconds once per query (all writes of one query run as a single
/// instrumented MapReduce job).
#[derive(Debug, Clone, Copy, Default)]
struct CreationCharge {
    read_bytes: u64,
    write_bytes: u64,
    files: u64,
}

impl CreationCharge {
    fn absorb(&mut self, other: CreationCharge) {
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.files += other.files;
    }
}

/// A DeepSea instance: the materialized-view pool manager wrapped around a
/// catalog, a simulated file system and a cluster model.
pub struct DeepSea {
    config: DeepSeaConfig,
    catalog: Arc<Catalog>,
    fs: Arc<SimFs<Table>>,
    cluster: ClusterSim,
    registry: ViewRegistry,
    clock: LogicalTime,
}

impl DeepSea {
    /// Create an instance with the paper-default cluster and block size.
    pub fn new(catalog: Catalog, config: DeepSeaConfig) -> Self {
        let cluster = ClusterSim::paper_default();
        let fs = SimFs::new(BlockConfig::default(), cluster.weights);
        Self::with_parts(Arc::new(catalog), Arc::new(fs), cluster, config)
    }

    /// Create an instance over existing substrates.
    pub fn with_parts(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        cluster: ClusterSim,
        config: DeepSeaConfig,
    ) -> Self {
        Self {
            config,
            catalog,
            fs,
            cluster,
            registry: ViewRegistry::new(),
            clock: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DeepSeaConfig {
        &self.config
    }

    /// The statistics registry (views, partitions, fragments).
    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// Current logical time (number of queries processed).
    pub fn clock(&self) -> LogicalTime {
        self.clock
    }

    /// Simulated bytes currently held by the pool.
    pub fn pool_bytes(&self) -> u64 {
        self.registry.pool_bytes()
    }

    /// The underlying simulated file system.
    pub fn fs(&self) -> &SimFs<Table> {
        &self.fs
    }

    /// The cluster model.
    pub fn cluster(&self) -> &ClusterSim {
        &self.cluster
    }

    /// Process one query — Algorithm 1.
    pub fn process_query(&mut self, plan: &LogicalPlan) -> Result<QueryOutcome, ExecError> {
        self.clock += 1;
        let tnow = self.clock;

        // The Hive baseline: no matching, no materialization — and, unlike
        // DeepSea's instrumented plans, full predicate pushdown ("most
        // optimizers will push down selections", §10.2).
        if !self.config.partition_policy.materializes() {
            let optimized = deepsea_engine::optimize::push_down_selections(plan, &self.catalog);
            let (result, metrics) = execute(&optimized, &self.catalog, &self.fs)?;
            let query_secs = self.cluster.elapsed_secs(&metrics);
            return Ok(QueryOutcome {
                result,
                elapsed_secs: query_secs,
                query_secs,
                creation_secs: 0.0,
                used_view: None,
                materialized: Vec::new(),
                evicted: Vec::new(),
                metrics,
            });
        }

        // ── 1. COMPUTEREWRITINGS ────────────────────────────────────────
        let hits = self.compute_rewritings(plan);

        // ── 2. UPDATESTATS for every (potential) match ───────────────────
        self.record_match_stats(plan, &hits, tnow);

        // ── 3. SELECTREWRITING ───────────────────────────────────────────
        let estimator = CostEstimator::new(&self.catalog, &self.fs, &self.cluster);
        let base_cost = estimator.estimated_secs(plan);
        let mut qbest = plan.clone();
        let mut best_cost = base_cost;
        let mut used_view = None;
        for hit in &hits {
            let Some(access) = &hit.access else { continue };
            let view = self.registry.view(hit.view);
            let Some(schema) = view.schema.clone() else { continue };
            let info = ViewScanInfo {
                view_name: view.name.clone(),
                files: access.files.clone(),
                schema,
            };
            if let Some(rewritten) =
                rewrite_with_view(plan, &hit.path, info, &hit.comp, &self.catalog)
            {
                let cost = estimator.estimated_secs(&rewritten);
                if cost < best_cost {
                    best_cost = cost;
                    qbest = rewritten;
                    used_view = Some(view.name.clone());
                }
            }
        }

        // ── 4. COMPUTEVIEWCAND / ADDCANDIDATES ───────────────────────────
        let new_cands = self.register_candidates(&qbest, tnow);
        self.register_partition_candidates(&qbest, tnow);

        // ── 5. VIEWSELECTION ─────────────────────────────────────────────
        let items = self.build_allcand(&new_cands, tnow);
        let selection = select_configuration(items, self.config.smax);

        // ── 6. INSTRUMENT + EXECUTE ──────────────────────────────────────
        let (result, metrics) = execute(&qbest, &self.catalog, &self.fs)?;
        let query_secs = self.cluster.elapsed_secs(&metrics);

        let mut evicted = Vec::new();
        for item in &selection.to_evict {
            if let Some(desc) = self.evict(&item.kind) {
                evicted.push(desc);
            }
        }
        let mut charge = CreationCharge::default();
        let mut materialized = Vec::new();
        // Views computed once per query for multi-fragment materialization.
        let mut view_cache: std::collections::HashMap<ViewId, Arc<Table>> =
            std::collections::HashMap::new();
        for item in &selection.to_create {
            match &item.kind {
                CandidateKind::WholeView(vid) => {
                    let (c, desc) = self.materialize_view(*vid, tnow)?;
                    charge.absorb(c);
                    materialized.extend(desc);
                }
                CandidateKind::Fragment(vid, attr, fid) => {
                    if let Some((c, desc)) =
                        self.materialize_fragment(*vid, attr, *fid, &mut view_cache)?
                    {
                        charge.absorb(c);
                        materialized.push(desc);
                    }
                }
            }
        }
        // One combined instrumented job per query: reads for repartitioning,
        // writes for all new views/fragments.
        let block = self.fs.block_config().block_bytes;
        let mut creation_secs = 0.0;
        if charge.read_bytes > 0 {
            creation_secs += self.cluster.scan_secs(charge.read_bytes, block);
        }
        if charge.files > 0 {
            creation_secs += self.cluster.write_secs(charge.write_bytes, charge.files);
        }
        // Actual sizes may exceed the estimates selection used.
        evicted.extend(self.enforce_limit(tnow));

        Ok(QueryOutcome {
            result,
            elapsed_secs: query_secs + creation_secs,
            query_secs,
            creation_secs,
            used_view,
            materialized,
            evicted,
            metrics,
        })
    }

    // ── Matching ─────────────────────────────────────────────────────────

    /// Subplans a view may be matched against: Definition 6 shapes, plus any
    /// chain of selections directly above one (the enclosing range selection
    /// must take part in matching so it can become fragment-selecting
    /// compensation, §8.2).
    fn match_roots(plan: &LogicalPlan) -> Vec<(Vec<usize>, &LogicalPlan)> {
        fn is_root(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Join { .. }
                | LogicalPlan::Aggregate { .. }
                | LogicalPlan::Project { .. } => true,
                LogicalPlan::Select { input, .. } => is_root(input),
                _ => false,
            }
        }
        all_subplans(plan)
            .into_iter()
            .filter(|(_, p)| is_root(p))
            .collect()
    }

    fn compute_rewritings(&self, plan: &LogicalPlan) -> Vec<MatchHit> {
        let estimator = CostEstimator::new(&self.catalog, &self.fs, &self.cluster);
        let mut hits = Vec::new();
        for (path, sub) in Self::match_roots(plan) {
            let Some(qsig) = Signature::of(sub) else { continue };
            for &vid in self.registry.lookup_bucket(&qsig) {
                let view = self.registry.view(vid);
                let Some(comp) = matches(&view.sig, &qsig) else { continue };
                let access = self.find_access(vid, &qsig);
                hits.push(MatchHit {
                    path: path.clone(),
                    view: vid,
                    comp,
                    sub_cost: estimator.estimated_secs(sub),
                    access,
                });
            }
        }
        hits
    }

    /// Cheapest way to read the view for this query: the whole file, or an
    /// Algorithm-2 fragment cover of the needed range on some partition.
    fn find_access(&self, vid: ViewId, qsig: &Signature) -> Option<Access> {
        let view = self.registry.view(vid);
        let mut best: Option<Access> = None;
        if let Some(f) = view.whole_file {
            best = Some(Access {
                files: vec![f],
                bytes: view.stats.size,
            });
        }
        for ps in view.partitions.values() {
            let mats = ps.materialized();
            if mats.is_empty() {
                continue;
            }
            let needed = match qsig.range_on_attr(&ps.attr) {
                Some(r) => match clamp_to_domain(r, &ps.domain) {
                    Some(iv) => iv,
                    None => continue, // query range misses the domain
                },
                None => ps.domain,
            };
            let Some(cover) = partition_matching(&needed, &mats) else {
                continue;
            };
            let mut files = Vec::with_capacity(cover.len());
            let mut bytes = 0;
            for fid in &cover {
                let frag = ps.frag(*fid).expect("cover returns tracked fragments");
                files.push(frag.file.expect("cover returns materialized fragments"));
                bytes += frag.size;
            }
            if best.as_ref().is_none_or(|b| bytes < b.bytes) {
                best = Some(Access { files, bytes });
            }
        }
        best
    }

    /// Record benefit events for matched views and hits for overlapped
    /// fragments — "no matter whether the view or fragment is currently in
    /// the pool or not" (§8.4).
    fn record_match_stats(&mut self, plan: &LogicalPlan, hits: &[MatchHit], tnow: LogicalTime) {
        let block = self.fs.block_config().block_bytes;
        // Pre-compute (view, saving, needed-range) outside the mutable loop;
        // several subqueries can match the same view — keep the hit with the
        // largest saving (the most specific, e.g. the one carrying the range
        // selection).
        let mut updates: std::collections::BTreeMap<ViewId, (f64, Vec<(String, Interval)>)> =
            std::collections::BTreeMap::new();
        for hit in hits {
            let view = self.registry.view(hit.view);
            let scan_bytes = match &hit.access {
                Some(a) => a.bytes,
                // Not materialized yet: COST(Q/V) anticipates *partitioned*
                // access — a future query only reads the fragments its range
                // needs (this is the whole point of partitioned views).
                None => {
                    let mut bytes = view.stats.size;
                    if self.config.partition_policy.partitions() {
                        let frac = self.comp_range_fraction(view, &hit.comp);
                        bytes = ((bytes as f64 * frac) as u64).max(1);
                    }
                    bytes
                }
            };
            let saving = (hit.sub_cost - self.cluster.scan_secs(scan_bytes, block)).max(0.0);
            // Which fragments were (or would have been) hit, per partition.
            let sub = deepsea_engine::subquery::subplan_at(plan, &hit.path);
            let qsig = sub.and_then(Signature::of);
            let mut ranges = Vec::new();
            for ps in view.partitions.values() {
                let needed = qsig
                    .as_ref()
                    .and_then(|s| s.range_on_attr(&ps.attr))
                    .and_then(|r| clamp_to_domain(r, &ps.domain))
                    .unwrap_or(ps.domain);
                ranges.push((ps.attr.clone(), needed));
            }
            match updates.get_mut(&hit.view) {
                Some(prev) if prev.0 >= saving => {}
                slot => {
                    let update = (saving, ranges);
                    match slot {
                        Some(prev) => *prev = update,
                        None => {
                            updates.insert(hit.view, update);
                        }
                    }
                }
            }
        }
        for (vid, (saving, ranges)) in updates {
            let tmax = self.config.tmax;
            let view = self.registry.view_mut(vid);
            view.stats.record_use(tnow, saving);
            view.stats.prune(tnow, tmax);
            for (attr, needed) in ranges {
                if let Some(ps) = view.partitions.get_mut(&attr) {
                    for frag in &mut ps.fragments {
                        if frag.interval.overlaps(&needed) {
                            frag.stats.record_hit(tnow);
                            frag.stats.prune(tnow, tmax);
                        }
                    }
                }
            }
        }
    }

    /// The fraction of the view a partitioned access needs for the given
    /// compensation ranges (1.0 when no applicable range is known).
    fn comp_range_fraction(&self, view: &crate::registry::ViewMeta, comp: &Compensation) -> f64 {
        let mut frac: f64 = 1.0;
        for (col, lo, hi) in &comp.ranges {
            let domain = view
                .partitions
                .values()
                .find(|p| attr_matches(&p.attr, col))
                .map(|p| p.domain)
                .or_else(|| self.attr_domain(&view.plan, col));
            if let Some(d) = domain {
                if let Some(iv) = clamp_to_domain((*lo, *hi), &d) {
                    frac = frac.min(iv.width() as f64 / d.width() as f64);
                }
            }
        }
        frac
    }

    // ── Candidate generation ─────────────────────────────────────────────

    /// Definition 6: register view candidates for the chosen plan's
    /// subqueries. Returns the ids of candidates relevant to this query.
    fn register_candidates(&mut self, qbest: &LogicalPlan, tnow: LogicalTime) -> Vec<ViewId> {
        let mut out = Vec::new();
        // Range selections anywhere in the chosen plan, used to anticipate
        // partitioned access when estimating first-use savings.
        let query_ranges: Vec<(String, (i64, i64))> = all_subplans(qbest)
            .into_iter()
            .filter_map(|(_, p)| match p {
                LogicalPlan::Select { pred, .. } => Some(collect_ranges(pred)),
                _ => None,
            })
            .flatten()
            .collect();
        let mut registrations: Vec<(LogicalPlan, Signature, u64, f64, f64, f64)> = Vec::new();
        {
            let estimator = CostEstimator::new(&self.catalog, &self.fs, &self.cluster);
            for (_, sub) in view_candidate_subplans(qbest) {
                let Some(sig) = Signature::of(sub) else { continue };
                let est = estimator.estimate(sub);
                let est_size = est.out_bytes.max(1.0) as u64;
                let block = self.fs.block_config().block_bytes;
                // Reducers write the view in parallel as one output wave; the
                // per-file dispatch penalty only applies to the real fragment
                // count, which is measured at materialization time.
                let files = 1;
                let compute = estimator.estimated_secs(sub);
                // Marginal overhead of materializing during this query (the
                // computation is a by-product); used by the admission filter.
                let overhead = self.cluster.write_secs(est_size, files);
                // Recreation cost (recompute + write); used in Φ (§7.1).
                let recreate = compute + overhead;
                // First-use saving: computing the subquery vs scanning the
                // view — anticipating partitioned access (only the fragments
                // the query's range needs) when the policy partitions.
                let mut scan_bytes = est_size;
                if self.config.partition_policy.partitions() {
                    let mut frac: f64 = 1.0;
                    for (col, (lo, hi)) in &query_ranges {
                        if let Some(d) = self.attr_domain(sub, col) {
                            if let Some(iv) = clamp_to_domain((*lo, *hi), &d) {
                                frac = frac.min(iv.width() as f64 / d.width() as f64);
                            }
                        }
                    }
                    scan_bytes = ((est_size as f64 * frac) as u64).max(1);
                }
                let saving = (compute - self.cluster.scan_secs(scan_bytes, block)).max(0.0);
                registrations.push((sub.clone(), sig, est_size, recreate, overhead, saving));
            }
        }
        for (plan, sig, est_size, recreate, overhead, saving) in registrations {
            let key = sig.canonical_key();
            let is_new = self.registry.by_key(&key).is_none();
            let vid = self.registry.register(plan, sig, est_size, recreate, overhead);
            if is_new {
                // The view could have been used by this very query.
                self.registry.view_mut(vid).stats.record_use(tnow, saving);
            }
            out.push(vid);
        }
        out
    }

    /// Definition 7: derive partition candidates from the range selections of
    /// the chosen plan.
    fn register_partition_candidates(&mut self, qbest: &LogicalPlan, tnow: LogicalTime) {
        if !self.config.partition_policy.partitions() {
            return;
        }
        // Collect (view id, attr, domain, query interval) tuples first.
        let mut work: Vec<(ViewId, String, Interval, Interval)> = Vec::new();
        for (_, sub) in all_subplans(qbest) {
            let LogicalPlan::Select { pred, input } = sub else { continue };
            let is_shape = matches!(
                **input,
                LogicalPlan::Join { .. }
                    | LogicalPlan::Aggregate { .. }
                    | LogicalPlan::Project { .. }
            );
            if let Some(sig) = is_shape.then(|| Signature::of(input)).flatten() {
                // σ over a view-shaped subquery (Definition 7 on a tracked view).
                let Some(vid) = self.registry.by_key(&sig.canonical_key()) else {
                    continue;
                };
                for (col, (lo, hi)) in collect_ranges(pred) {
                    let Some(domain) = self.attr_domain(input, &col) else { continue };
                    let Some(qiv) = clamp_to_domain((lo, hi), &domain) else { continue };
                    work.push((vid, col, domain, qiv));
                }
            } else if let Some(view_name) = viewscan_name(input) {
                // σ over a (rewritten) view scan: refine the partitions of
                // the reused view — this is how progressive refinement keeps
                // happening once queries are answered from the pool.
                let Some(vid) = self.registry.by_name(view_name) else { continue };
                for (col, (lo, hi)) in collect_ranges(pred) {
                    // Refine the existing partition on this attribute, or —
                    // since a view may hold partitions on several attributes —
                    // start tracking a new one from the base-table domain.
                    let existing = self
                        .registry
                        .view(vid)
                        .partitions
                        .values()
                        .find(|p| attr_matches(&p.attr, &col))
                        .map(|p| (p.attr.clone(), p.domain));
                    let (attr, domain) = match existing {
                        Some(x) => x,
                        None => {
                            let plan = self.registry.view(vid).plan.clone();
                            match self.attr_domain(&plan, &col) {
                                Some(d) => (col.clone(), d),
                                None => continue,
                            }
                        }
                    };
                    let Some(qiv) = clamp_to_domain((lo, hi), &domain) else { continue };
                    work.push((vid, attr, domain, qiv));
                }
            }
        }
        for (vid, col, domain, qiv) in work {
            let tmax = self.config.tmax;
            let view = self.registry.view_mut(vid);
            let view_size = view.stats.size;
            let ps = view
                .partitions
                .entry(col.clone())
                .or_insert_with(|| PartitionState::new(col.clone(), domain));
            ps.add_boundary(qiv.lo);
            if qiv.hi < ps.domain.hi {
                ps.add_boundary(qiv.hi + 1);
            }
            let base = ps.candidate_base();
            let mut cands = partition_candidates(&base, &ps.domain, &qiv);
            // §9 "Bounding Fragment Size": chop candidates larger than
            // φ·S(V) into equal pieces so cold regions never become one
            // monolithic fragment.
            if let Some(phi) = self.config.phi_max_fraction {
                let limit = (phi * view_size as f64).max(1.0);
                cands = cands
                    .into_iter()
                    .flat_map(|c| {
                        let est = ps.estimate_size(&c, view_size) as f64;
                        if est > limit {
                            c.chop((est / limit).ceil() as usize)
                        } else {
                            vec![c]
                        }
                    })
                    .collect();
            }
            for cand in cands {
                let est = ps.estimate_size(&cand, view_size);
                let is_new = ps.find(&cand).is_none();
                let fid = ps.track(cand, est);
                // Freshly-tracked candidates inside the query range would
                // have been used by this query; existing fragments already
                // recorded their hit during the matching phase.
                if is_new && qiv.contains(&cand) {
                    let frag = ps.frag_mut(fid).expect("just tracked");
                    frag.stats.record_hit(tnow);
                    frag.stats.prune(tnow, tmax);
                }
            }
        }
    }

    /// The domain `D(A)` of an attribute, from base-table statistics.
    fn attr_domain(&self, plan: &LogicalPlan, col: &str) -> Option<Interval> {
        for t in plan.base_tables() {
            if let Some(s) = self.catalog.column_stats(t, col) {
                return Some(Interval::new(s.min, s.max));
            }
        }
        None
    }

    // ── Selection ────────────────────────────────────────────────────────

    /// Build `ALLCAND = Vsel ∪ Psel ∪ {materialized views and fragments}`.
    fn build_allcand(&self, new_cands: &[ViewId], tnow: LogicalTime) -> Vec<RankedItem> {
        let tmax = self.config.tmax;
        let vm = self.config.value_model;
        let mut items = Vec::new();
        let mut included: BTreeSet<ViewId> = BTreeSet::new();

        // Vsel: this query's unmaterialized view candidates passing COST ≤ B.
        for &vid in new_cands {
            if !included.insert(vid) {
                continue;
            }
            let view = self.registry.view(vid);
            if view.is_materialized() {
                continue;
            }
            let benefit = vm.view_benefit(&view.stats, tnow, tmax);
            if view.creation_overhead > benefit {
                continue;
            }
            // Under the progressive policy a new partitioned view's *initial
            // fragments* are admitted individually — "candidate views and
            // fragments are treated alike" (§7.3). A pool far smaller than
            // the view can still admit its hot fragments.
            let progressive = matches!(
                self.config.partition_policy,
                PartitionPolicy::Progressive { .. }
            );
            let hinted = view
                .partitions
                .values()
                .max_by_key(|p| (p.boundaries.len(), p.fragments.len()))
                .filter(|p| !p.fragments.is_empty());
            match hinted {
                Some(ps) if progressive => {
                    let values =
                        vm.fragment_values(ps, view.stats.size, view.stats.cost, tnow, tmax);
                    // Tracked candidates can overlap (pieces from different
                    // queries' splits); the initial materialization keeps a
                    // greedy Φ-ranked *disjoint* subset so the view is not
                    // written multiple times over.
                    let mut ranked: Vec<(&crate::fragment::FragmentMeta, f64)> =
                        ps.fragments.iter().zip(values).collect();
                    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
                    let mut taken: Vec<Interval> = Vec::new();
                    for (frag, phi) in ranked {
                        if taken.iter().any(|iv| iv.overlaps(&frag.interval)) {
                            continue;
                        }
                        taken.push(frag.interval);
                        items.push(RankedItem {
                            kind: CandidateKind::Fragment(view.id, ps.attr.clone(), frag.id),
                            phi,
                            size: frag.size,
                            materialized: false,
                        });
                    }
                }
                _ => items.push(RankedItem {
                    kind: CandidateKind::WholeView(vid),
                    phi: vm.view_value(&view.stats, tnow, tmax),
                    size: view.stats.size,
                    materialized: false,
                }),
            }
        }

        for view in self.registry.iter() {
            // Materialized whole views partake (needed for NP-style pools).
            if view.whole_file.is_some() {
                items.push(RankedItem {
                    kind: CandidateKind::WholeView(view.id),
                    phi: vm.view_value(&view.stats, tnow, tmax),
                    size: view.stats.size,
                    materialized: true,
                });
            }
            for ps in view.partitions.values() {
                if !ps.any_materialized() {
                    continue;
                }
                let values = vm.fragment_values(ps, view.stats.size, view.stats.cost, tnow, tmax);
                for (frag, phi) in ps.fragments.iter().zip(values) {
                    if frag.is_materialized() {
                        items.push(RankedItem {
                            kind: CandidateKind::Fragment(view.id, ps.attr.clone(), frag.id),
                            phi,
                            size: frag.size,
                            materialized: true,
                        });
                    } else if self.config.partition_policy.repartitions() {
                        // Psel: refinement candidates passing COST(Icand) ≤ B(I)
                        // (§7.2 — only for partitions already in the pool).
                        // A candidate that is already covered nearly as
                        // cheaply by materialized fragments brings no marginal
                        // benefit — skip it (the cost-based refinement
                        // decision of §2).
                        let block = self.fs.block_config().block_bytes;
                        let mats = ps.materialized();
                        let cover_bytes = partition_matching(&frag.interval, &mats).map(|cover| {
                            cover
                                .iter()
                                .filter_map(|id| ps.frag(*id))
                                .map(|f| f.size)
                                .sum::<u64>()
                        });
                        if let Some(cb) = cover_bytes {
                            if cb <= frag.size.saturating_mul(5) / 4 {
                                continue;
                            }
                        }
                        // COST(Icand) = wwrite·S(Icand) + Σ wread·S(I), here at
                        // cluster-effective rates so the units match benefits.
                        let read_bytes: u64 = ps
                            .fragments
                            .iter()
                            .filter(|f| f.is_materialized() && f.interval.overlaps(&frag.interval))
                            .map(|f| f.size)
                            .sum();
                        let create_cost = if read_bytes == 0 {
                            // Nothing materialized overlaps: the fragment must
                            // be rebuilt by recomputing the view (§7.1: the
                            // fragment's cost is its view's creation cost).
                            view.stats.cost
                        } else {
                            self.cluster
                                .write_secs(frag.size, frag.size.div_ceil(block).max(1))
                                + self.cluster.scan_secs(read_bytes, block)
                        };
                        // Admission benefit: what each (decayed) hit actually
                        // saves over today's best access to this range — the
                        // cover read (or a full recompute when uncovered)
                        // versus reading just this fragment. A sharper proxy
                        // for B(I) than the size-share formula, which is kept
                        // for the eviction ranking Φ above.
                        let per_hit_saving = match cover_bytes {
                            Some(cb) => {
                                (self.cluster.scan_secs(cb, block)
                                    - self.cluster.scan_secs(frag.size, block))
                                .max(0.0)
                            }
                            None => (view.stats.cost
                                - self.cluster.scan_secs(frag.size, block))
                            .max(0.0),
                        };
                        let benefit = per_hit_saving * frag.stats.decayed_hits(tnow, tmax);
                        if create_cost <= benefit {
                            items.push(RankedItem {
                                kind: CandidateKind::Fragment(view.id, ps.attr.clone(), frag.id),
                                phi,
                                size: frag.size,
                                materialized: false,
                            });
                        }
                    }
                }
            }
        }
        items
    }

    // ── Materialization / eviction ───────────────────────────────────────

    /// Materialize a view (whole or initially partitioned). Returns the
    /// creation overhead in seconds and descriptions of what was written.
    fn materialize_view(
        &mut self,
        vid: ViewId,
        _tnow: LogicalTime,
    ) -> Result<(CreationCharge, Vec<String>), ExecError> {
        let (plan, name) = {
            let v = self.registry.view(vid);
            if v.is_materialized() {
                return Ok((CreationCharge::default(), Vec::new()));
            }
            (v.plan.clone(), v.name.clone())
        };
        // Compute the view's content. In the real system this is a by-product
        // of the instrumented query's execution, so only the *write* side is
        // charged below.
        let (table, _compute_metrics) = execute(&plan, &self.catalog, &self.fs)?;
        let actual_size = table.sim_bytes();
        let schema = table.schema.clone();

        // Choose a partition layout.
        let attr_choice: Option<(String, Interval, Vec<Interval>)> = {
            let v = self.registry.view(vid);
            self.choose_layout(v.partitions.values(), actual_size, &table)
        };

        let mut descs = Vec::new();
        let mut written_bytes = 0u64;
        let mut files = 0u64;
        match attr_choice {
            Some((attr, _domain, intervals)) if self.config.partition_policy.partitions() => {
                let col_idx = schema
                    .index_of(&attr)
                    .ok_or_else(|| ExecError::UnknownColumn(attr.clone()))?;
                for iv in &intervals {
                    let rows: Vec<_> = table
                        .rows
                        .iter()
                        .filter(|r| match r[col_idx].as_int() {
                            Some(v) => iv.contains_point(v),
                            None => false,
                        })
                        .cloned()
                        .collect();
                    let frag_table = Table::new(schema.clone(), rows, table.bytes_per_row);
                    let size = frag_table.sim_bytes();
                    let (file, _) = self.fs.create(
                        format!("{name}.{attr}{iv}"),
                        size,
                        frag_table,
                    );
                    written_bytes += size;
                    files += 1;
                    let view = self.registry.view_mut(vid);
                    let ps = view
                        .partitions
                        .get_mut(&attr)
                        .expect("layout chosen from existing partition");
                    let fid = ps.track(*iv, size);
                    let frag = ps.frag_mut(fid).expect("just tracked");
                    frag.file = Some(file);
                    frag.size = size;
                    descs.push(format!("{name}.{attr}{iv}"));
                }
            }
            _ => {
                let size = table.sim_bytes();
                let (file, _) = self.fs.create(name.clone(), size, table);
                written_bytes += size;
                files += 1;
                self.registry.view_mut(vid).whole_file = Some(file);
                descs.push(name.clone());
            }
        }
        let secs = self.cluster.write_secs(written_bytes, files);
        let estimator = CostEstimator::new(&self.catalog, &self.fs, &self.cluster);
        let recompute = estimator.estimated_secs(&plan) + secs;
        let view = self.registry.view_mut(vid);
        view.schema = Some(schema);
        view.stats.set_measured(actual_size, recompute);
        view.creation_overhead = secs;
        Ok((
            CreationCharge {
                read_bytes: 0,
                write_bytes: written_bytes,
                files,
            },
            descs,
        ))
    }

    /// Pick the partition attribute and initial intervals for a new view.
    fn choose_layout<'a>(
        &self,
        partitions: impl Iterator<Item = &'a PartitionState>,
        view_size: u64,
        table: &Table,
    ) -> Option<(String, Interval, Vec<Interval>)> {
        // Prefer the partition with the most recorded boundaries (the
        // attribute the workload actually selects on).
        let ps = partitions.max_by_key(|p| (p.boundaries.len(), p.fragments.len()))?;
        let intervals = match self.config.partition_policy {
            PartitionPolicy::EquiDepth { fragments } => {
                let col = table.schema.index_of(&ps.attr)?;
                let mut values: Vec<i64> =
                    table.rows.iter().filter_map(|r| r[col].as_int()).collect();
                values.sort_unstable();
                equi_depth_intervals(&values, fragments, &ps.domain)
            }
            PartitionPolicy::Progressive { .. } => apply_size_bounds(
                &ps.boundary_partition(),
                &ps.domain,
                view_size,
                self.config.min_fragment_bytes,
                self.config.phi_max_fraction,
            ),
            _ => return None,
        };
        Some((ps.attr.clone(), ps.domain, intervals))
    }

    /// Materialize one refinement fragment on an existing partition.
    /// Charges `wread` for every overlapping materialized fragment read and
    /// `wwrite` for everything written (§7.2). Under horizontal (non-
    /// overlapping) partitioning, split fragments are rewritten and dropped;
    /// under overlapping partitioning the originals are kept.
    fn materialize_fragment(
        &mut self,
        vid: ViewId,
        attr: &str,
        fid: FragmentId,
        view_cache: &mut std::collections::HashMap<ViewId, Arc<Table>>,
    ) -> Result<Option<(CreationCharge, String)>, ExecError> {
        let overlapping_mode = self.config.partition_policy.overlapping();
        let (name, schema, target, sources): (String, _, Interval, Vec<SourceFrag>) = {
            let view = self.registry.view(vid);
            let Some(ps) = view.partitions.get(attr) else {
                return Ok(None);
            };
            let Some(frag) = ps.frag(fid) else { return Ok(None) };
            if frag.is_materialized() {
                return Ok(None);
            }
            let target = frag.interval;
            let sources = ps
                .fragments
                .iter()
                .filter(|f| f.is_materialized() && f.interval.overlaps(&target))
                .map(|f| (f.id, f.interval, f.file.unwrap(), f.size))
                .collect::<Vec<_>>();
            let schema = view.schema.clone();
            match schema {
                Some(s) if !sources.is_empty() => (view.name.clone(), s, target, sources),
                // No materialized source covers the target (fresh view, or a
                // fully-evicted region): build the fragment from the view's
                // plan instead.
                _ => return self.materialize_fragment_from_plan(vid, attr, fid, view_cache),
            }
        };

        let col_idx = schema
            .index_of(attr)
            .ok_or_else(|| ExecError::UnknownColumn(attr.to_string()))?;
        let mut read_bytes = 0u64;
        let mut written_bytes = 0u64;
        let mut files_written = 0u64;

        // Use an Algorithm-2 cover so each row is taken exactly once even
        // when materialized source fragments overlap each other.
        let cover = partition_matching(
            &target,
            &sources.iter().map(|(id, iv, _, _)| (*id, *iv)).collect::<Vec<_>>(),
        );
        let Some(cover) = cover else { return Ok(None) };

        let mut rows = Vec::new();
        let mut next_lo = target.lo;
        let mut source_tables = Vec::new();
        for fid2 in &cover {
            let (_, iv, file, _) = sources.iter().find(|(id, ..)| id == fid2).unwrap();
            let Some((payload, bytes, _)) = self.fs.read(*file) else {
                return Ok(None);
            };
            read_bytes += bytes;
            let take = Interval::new(next_lo.max(target.lo), iv.hi.min(target.hi));
            for r in &payload.rows {
                if let Some(v) = r[col_idx].as_int() {
                    if take.contains_point(v) {
                        rows.push(r.clone());
                    }
                }
            }
            source_tables.push((*fid2, Arc::clone(&payload)));
            next_lo = iv.hi + 1;
            if next_lo > target.hi {
                break;
            }
        }
        let bytes_per_row = source_tables
            .first()
            .map(|(_, t)| t.bytes_per_row)
            .unwrap_or(1);
        let frag_table = Table::new(schema.clone(), rows, bytes_per_row);
        let new_size = frag_table.sim_bytes();
        let (new_file, _) = self
            .fs
            .create(format!("{name}.{attr}{target}"), new_size, frag_table);
        written_bytes += new_size;
        files_written += 1;

        // Horizontal mode: rewrite the remainders of every split fragment and
        // drop the originals. Overlapping mode: keep them (§10.4).
        let mut split_work: Vec<(FragmentId, Interval, u64)> = Vec::new();
        if !overlapping_mode {
            for (sid, iv, _, size) in &sources {
                split_work.push((*sid, *iv, *size));
            }
        }
        let mut remainder_meta: Vec<(Interval, FileId, u64)> = Vec::new();
        let mut dropped: Vec<FragmentId> = Vec::new();
        for (sid, iv, _size) in &split_work {
            // Remainder pieces of iv not covered by target.
            let mut pieces = Vec::new();
            if iv.lo < target.lo {
                pieces.push(Interval::new(iv.lo, target.lo - 1));
            }
            if iv.hi > target.hi {
                pieces.push(Interval::new(target.hi + 1, iv.hi));
            }
            let payload = source_tables
                .iter()
                .find(|(id, _)| id == sid)
                .map(|(_, t)| Arc::clone(t));
            let payload = match payload {
                Some(p) => p,
                None => {
                    // Source overlapped the target but was not in the cover;
                    // read it now for splitting.
                    let file = sources.iter().find(|(id, ..)| id == sid).unwrap().2;
                    let Some((p, bytes, _)) = self.fs.read(file) else { continue };
                    read_bytes += bytes;
                    p
                }
            };
            for piece in pieces {
                let rows: Vec<_> = payload
                    .rows
                    .iter()
                    .filter(|r| {
                        r[col_idx]
                            .as_int()
                            .is_some_and(|v| piece.contains_point(v))
                    })
                    .cloned()
                    .collect();
                let t = Table::new(schema.clone(), rows, payload.bytes_per_row);
                let size = t.sim_bytes();
                let (file, _) = self.fs.create(format!("{name}.{attr}{piece}"), size, t);
                written_bytes += size;
                files_written += 1;
                remainder_meta.push((piece, file, size));
            }
            dropped.push(*sid);
        }

        // Update registry metadata.
        {
            let view = self.registry.view_mut(vid);
            let ps = view.partitions.get_mut(attr).expect("checked above");
            if let Some(f) = ps.frag_mut(fid) {
                f.file = Some(new_file);
                f.size = new_size;
            }
            for sid in dropped {
                if let Some(f) = ps.frag_mut(sid) {
                    if let Some(file) = f.file.take() {
                        self.fs.delete(file);
                    }
                }
            }
            for (piece, file, size) in remainder_meta {
                let pid = ps.track(piece, size);
                let f = ps.frag_mut(pid).expect("just tracked");
                f.file = Some(file);
                f.size = size;
            }
        }

        Ok(Some((
            CreationCharge {
                read_bytes,
                write_bytes: written_bytes,
                files: files_written,
            },
            format!("{name}.{attr}{target}"),
        )))
    }

    /// Build a fragment by computing the view's plan (used for initial
    /// partitioned materialization and for regions whose sources were
    /// evicted). As with whole-view materialization, the computation happens
    /// as a by-product of the running query, so only the write is charged.
    fn materialize_fragment_from_plan(
        &mut self,
        vid: ViewId,
        attr: &str,
        fid: FragmentId,
        view_cache: &mut std::collections::HashMap<ViewId, Arc<Table>>,
    ) -> Result<Option<(CreationCharge, String)>, ExecError> {
        let (plan, name, target) = {
            let view = self.registry.view(vid);
            let Some(ps) = view.partitions.get(attr) else { return Ok(None) };
            let Some(frag) = ps.frag(fid) else { return Ok(None) };
            (view.plan.clone(), view.name.clone(), frag.interval)
        };
        let table = match view_cache.get(&vid) {
            Some(t) => Arc::clone(t),
            None => {
                let (t, _metrics) = execute(&plan, &self.catalog, &self.fs)?;
                let t = Arc::new(t);
                view_cache.insert(vid, Arc::clone(&t));
                t
            }
        };
        let schema = table.schema.clone();
        let Some(col_idx) = schema.index_of(attr) else {
            return Ok(None);
        };
        let full_size = table.sim_bytes();
        let rows: Vec<_> = table
            .rows
            .iter()
            .filter(|r| {
                r[col_idx]
                    .as_int()
                    .is_some_and(|v| target.contains_point(v))
            })
            .cloned()
            .collect();
        let frag_table = Table::new(schema.clone(), rows, table.bytes_per_row);
        let size = frag_table.sim_bytes();
        let (file, _) = self
            .fs
            .create(format!("{name}.{attr}{target}"), size, frag_table);
        let overhead = self.cluster.write_secs(full_size, 1);
        let estimator = CostEstimator::new(&self.catalog, &self.fs, &self.cluster);
        let recompute = estimator.estimated_secs(&plan);
        let view = self.registry.view_mut(vid);
        if view.schema.is_none() {
            view.schema = Some(schema);
            view.stats.set_measured(full_size, recompute + overhead);
            view.creation_overhead = overhead;
        }
        let ps = view.partitions.get_mut(attr).expect("checked above");
        if let Some(f) = ps.frag_mut(fid) {
            f.file = Some(file);
            f.size = size;
        }
        Ok(Some((
            CreationCharge {
                read_bytes: 0,
                write_bytes: size,
                files: 1,
            },
            format!("{name}.{attr}{target}"),
        )))
    }

    fn evict(&mut self, kind: &CandidateKind) -> Option<String> {
        match kind {
            CandidateKind::WholeView(vid) => {
                let view = self.registry.view_mut(*vid);
                let file = view.whole_file.take()?;
                self.fs.delete(file);
                Some(view.name.clone())
            }
            CandidateKind::Fragment(vid, attr, fid) => {
                let view = self.registry.view_mut(*vid);
                let name = view.name.clone();
                let ps = view.partitions.get_mut(attr)?;
                let frag = ps.frag_mut(*fid)?;
                let file = frag.file.take()?;
                let iv = frag.interval;
                self.fs.delete(file);
                Some(format!("{name}.{attr}{iv}"))
            }
        }
    }

    /// Evict lowest-value items until the pool fits `Smax` again (actual
    /// materialized sizes can exceed the estimates selection planned with).
    /// Maintenance pass implementing the §11 extension: merge consecutive
    /// materialized fragments that are (almost) always accessed together.
    /// Reads both halves, writes the union, drops the originals; returns the
    /// simulated seconds spent and the merges performed.
    pub fn merge_cohit_fragments(
        &mut self,
        cohit_tolerance: f64,
        max_merged_fraction: f64,
    ) -> Result<(f64, Vec<String>), ExecError> {
        let tnow = self.clock.max(1);
        let tmax = self.config.tmax;
        let block = self.fs.block_config().block_bytes;
        // Collect the work before mutating (borrow discipline).
        let mut work: Vec<(ViewId, String, crate::merging::MergeCandidate)> = Vec::new();
        for view in self.registry.iter() {
            let cap = (view.stats.size as f64 * max_merged_fraction) as u64;
            for ps in view.partitions.values() {
                for cand in
                    crate::merging::merge_candidates(ps, tnow, tmax, cohit_tolerance, cap)
                {
                    work.push((view.id, ps.attr.clone(), cand));
                }
            }
        }
        let mut secs = 0.0;
        let mut merged = Vec::new();
        for (vid, attr, cand) in work {
            let (name, schema, files_sizes) = {
                let view = self.registry.view(vid);
                let Some(schema) = view.schema.clone() else { continue };
                let ps = view.partitions.get(&attr).expect("candidate source");
                let pair: Vec<(FileId, u64)> = [cand.left, cand.right]
                    .iter()
                    .filter_map(|id| ps.frag(*id))
                    .filter_map(|f| f.file.map(|file| (file, f.size)))
                    .collect();
                if pair.len() != 2 {
                    continue; // one half was evicted since planning
                }
                (view.name.clone(), schema, pair)
            };
            let mut rows = Vec::new();
            let mut read_bytes = 0;
            let mut bpr = 1;
            for (file, _) in &files_sizes {
                let Some((payload, bytes, _)) = self.fs.read(*file) else { continue };
                read_bytes += bytes;
                bpr = bpr.max(payload.bytes_per_row);
                rows.extend(payload.rows.iter().cloned());
            }
            let merged_table = Table::new(schema, rows, bpr);
            let size = merged_table.sim_bytes();
            let (new_file, _) =
                self.fs
                    .create(format!("{name}.{attr}{}", cand.merged), size, merged_table);
            secs += self.cluster.scan_secs(read_bytes, block)
                + self.cluster.write_secs(size, size.div_ceil(block).max(1));
            // Update metadata: drop the halves, track the union.
            let view = self.registry.view_mut(vid);
            let ps = view.partitions.get_mut(&attr).expect("checked");
            let mut hits: Vec<LogicalTime> = Vec::new();
            for id in [cand.left, cand.right] {
                if let Some(f) = ps.frag_mut(id) {
                    hits.extend(f.stats.hits.iter().copied());
                    if let Some(file) = f.file.take() {
                        self.fs.delete(file);
                    }
                }
            }
            hits.sort_unstable();
            let mid = ps.track(cand.merged, size);
            let f = ps.frag_mut(mid).expect("just tracked");
            f.file = Some(new_file);
            f.size = size;
            f.stats.hits = hits;
            merged.push(format!("{name}.{attr}{}", cand.merged));
        }
        Ok((secs, merged))
    }

    fn enforce_limit(&mut self, tnow: LogicalTime) -> Vec<String> {
        let Some(smax) = self.config.smax else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while self.pool_bytes() > smax {
            let items: Vec<RankedItem> = self
                .build_allcand(&[], tnow)
                .into_iter()
                .filter(|i| i.materialized)
                .collect();
            let Some(worst) = items
                .into_iter()
                .min_by(|a, b| a.phi.total_cmp(&b.phi))
            else {
                break;
            };
            match self.evict(&worst.kind) {
                Some(d) => evicted.push(d),
                None => break,
            }
        }
        evicted
    }
}

/// The view name a plan scans, reached through any chain of
/// selections/projections, if any.
fn viewscan_name(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::ViewScan(v) => Some(&v.view_name),
        LogicalPlan::Select { input, .. } | LogicalPlan::Project { input, .. } => {
            viewscan_name(input)
        }
        _ => None,
    }
}

/// Do two attribute names refer to the same column (qualified or bare)?
fn attr_matches(a: &str, b: &str) -> bool {
    a == b || a.rsplit('.').next() == b.rsplit('.').next()
}

/// All range conjuncts of a predicate as `(column, (lo, hi))`.
fn collect_ranges(pred: &deepsea_relation::Predicate) -> Vec<(String, (i64, i64))> {
    pred.conjuncts()
        .into_iter()
        .filter_map(|c| match c {
            deepsea_relation::Predicate::Range { col, low, high } => {
                Some((col.clone(), (*low, *high)))
            }
            _ => None,
        })
        .collect()
}

// Re-export for the harness: the number of map tasks the last plan produced
// is part of ExecMetrics; nothing else to add here.

#[allow(unused_imports)]
use deepsea_relation::Predicate as _PredicateForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ValueModel;
    use deepsea_engine::plan::AggExpr;
    use deepsea_relation::generate::{ColumnGen, TableGen};
    use deepsea_relation::{DataType, Field, Predicate, Schema};

    /// A small star schema: fact(k ∈ [0,999], v) ⋈ dim(k, label).
    fn catalog(rows: usize) -> Catalog {
        let mut c = Catalog::new();
        let fact = TableGen::new(
            Schema::new(vec![
                Field::new("fact.k", DataType::Int),
                Field::new("fact.v", DataType::Float),
            ]),
            vec![
                ColumnGen::UniformInt { low: 0, high: 999 },
                ColumnGen::UniformFloat { low: 0.0, high: 100.0 },
            ],
            // Simulated bytes per row: rows=2000 → ~40GB, i.e. cluster-scale
            // data where fragment-level savings clear the fixed MapReduce
            // stage overheads.
            20_000_000,
            42,
        )
        .generate(rows);
        let dim = TableGen::new(
            Schema::new(vec![
                Field::new("dim.k", DataType::Int),
                Field::new("dim.label", DataType::Str),
            ]),
            vec![
                ColumnGen::Serial { start: 0 },
                ColumnGen::Label { prefix: "l", card: 10 },
            ],
            10_000,
            43,
        )
        .generate(1000);
        c.register("fact", fact);
        c.register("dim", dim);
        c
    }

    fn query(lo: i64, hi: i64) -> LogicalPlan {
        LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim"), vec![("fact.k", "dim.k")])
            .select(Predicate::range("fact.k", lo, hi))
            .aggregate(vec!["dim.label"], vec![AggExpr::count("cnt")])
    }

    fn ds(config: DeepSeaConfig) -> DeepSea {
        DeepSea::new(catalog(2000), config)
    }

    /// The first view with a materialized partition (the join view, in these
    /// tests — the aggregate view is materialized whole).
    fn partitioned_view(d: &DeepSea) -> &crate::registry::ViewMeta {
        d.registry()
            .iter()
            .find(|v| v.partitions.values().any(|p| p.any_materialized()))
            .expect("a partitioned view exists")
    }

    #[test]
    fn hive_baseline_never_materializes() {
        let mut d = ds(DeepSeaConfig::default()
            .with_policy(PartitionPolicy::NoMaterialization));
        for i in 0..3 {
            let out = d.process_query(&query(i * 10, i * 10 + 50)).unwrap();
            assert!(out.materialized.is_empty());
            assert!(out.used_view.is_none());
            assert_eq!(out.creation_secs, 0.0);
        }
        assert_eq!(d.pool_bytes(), 0);
        assert_eq!(d.registry().len(), 0);
    }

    #[test]
    fn np_materializes_whole_view_and_reuses_it() {
        let mut d = ds(DeepSeaConfig::default().with_policy(PartitionPolicy::NoPartition));
        let out1 = d.process_query(&query(100, 150)).unwrap();
        assert!(
            !out1.materialized.is_empty(),
            "first query materializes: {out1:?}"
        );
        assert!(d.pool_bytes() > 0);
        // Distinct ranges so only logical (not exact) matching can help.
        let mut reused = false;
        let mut reuse_secs = f64::MAX;
        for i in 0..6 {
            let out = d.process_query(&query(200 + i, 260 + i)).unwrap();
            if out.used_view.is_some() {
                reused = true;
                reuse_secs = reuse_secs.min(out.query_secs);
            }
        }
        assert!(reused, "later queries reuse the whole view");
        assert!(
            reuse_secs < out1.query_secs,
            "reuse must be faster: {reuse_secs} vs {}",
            out1.query_secs
        );
    }

    #[test]
    fn rewritten_results_match_hive_results() {
        let mut d_ds = ds(DeepSeaConfig::default());
        let mut d_h = ds(DeepSeaConfig::default()
            .with_policy(PartitionPolicy::NoMaterialization));
        for (lo, hi) in [(100, 200), (120, 180), (150, 420), (0, 999), (130, 170)] {
            let q = query(lo, hi);
            let a = d_ds.process_query(&q).unwrap();
            let b = d_h.process_query(&q).unwrap();
            assert_eq!(
                a.result.fingerprint(),
                b.result.fingerprint(),
                "range [{lo},{hi}] must return identical results"
            );
        }
    }

    #[test]
    fn deepsea_creates_partitioned_view_with_query_boundaries() {
        let mut d = ds(DeepSeaConfig::default().with_min_fragment_bytes(1));
        let out = d.process_query(&query(400, 600)).unwrap();
        assert!(out.materialized.len() >= 2, "partitioned into fragments: {out:?}");
        // Find the join view and its partition.
        let view = partitioned_view(&d);
        let ps = view
            .partitions
            .values()
            .find(|p| p.any_materialized())
            .expect("partitioned");
        let mats = ps.materialized();
        assert!(mats.len() >= 3, "boundary partition has ≥3 fragments");
        let ivs: Vec<Interval> = mats.iter().map(|(_, iv)| *iv).collect();
        assert!(crate::interval::covers(&ivs, &ps.domain));
    }

    #[test]
    fn partitioned_reuse_reads_less_than_whole_view() {
        let mut d = ds(DeepSeaConfig::default().with_min_fragment_bytes(1));
        d.process_query(&query(400, 600)).unwrap();
        // Narrow query inside the hot fragment.
        let out = d.process_query(&query(450, 550)).unwrap();
        assert!(out.used_view.is_some());
        let view = partitioned_view(&d);
        assert!(
            out.metrics.bytes_read < view.stats.size,
            "fragment read {} must be below whole view {}",
            out.metrics.bytes_read,
            view.stats.size
        );
    }

    #[test]
    fn progressive_refinement_creates_new_fragments() {
        let mut d = ds(DeepSeaConfig::default()
            .with_min_fragment_bytes(1)
            .without_phi());
        d.process_query(&query(400, 600)).unwrap();
        // A query carving a sub-range of the cold left fragment [0,399]:
        // candidates [0,99],[100,200],[201,399] are generated; after enough
        // hits the refinement materializes.
        let mut refined = false;
        for _ in 0..20 {
            let out = d.process_query(&query(100, 200)).unwrap();
            if out
                .materialized
                .iter()
                .any(|m| m.contains("[100, 200]"))
            {
                refined = true;
            }
        }
        assert!(refined, "repeated hits must refine the cold fragment");
        // And the refined fragment is then used.
        let out = d.process_query(&query(120, 180)).unwrap();
        assert!(out.used_view.is_some());
    }

    #[test]
    fn no_repartition_policy_never_refines() {
        let cfg = DeepSeaConfig::default()
            .with_policy(PartitionPolicy::Progressive {
                overlapping: true,
                repartition: false,
            })
            .with_min_fragment_bytes(1);
        let mut d = ds(cfg);
        d.process_query(&query(400, 600)).unwrap();
        let frag_count = |d: &DeepSea| {
            d.registry()
                .iter()
                .flat_map(|v| v.partitions.values())
                .map(|p| p.materialized().len())
                .sum::<usize>()
        };
        let initial = frag_count(&d);
        for _ in 0..10 {
            d.process_query(&query(100, 200)).unwrap();
        }
        assert_eq!(frag_count(&d), initial, "NR must not add fragments");
    }

    #[test]
    fn equi_depth_policy_creates_k_fragments() {
        let cfg = DeepSeaConfig::default()
            .with_policy(PartitionPolicy::EquiDepth { fragments: 6 })
            .with_min_fragment_bytes(1);
        let mut d = ds(cfg);
        d.process_query(&query(400, 600)).unwrap();
        let view = partitioned_view(&d);
        let ps = view
            .partitions
            .values()
            .find(|p| p.any_materialized())
            .expect("partitioned");
        assert_eq!(ps.materialized().len(), 6);
    }

    #[test]
    fn pool_limit_is_respected() {
        // Tiny pool: force eviction churn but never exceed the limit.
        let smax = 60_000_000_000; // far below the ~80GB of candidate views
        let cfg = DeepSeaConfig::default()
            .with_smax(smax)
            .with_min_fragment_bytes(1);
        let mut d = ds(cfg);
        for i in 0..6 {
            let lo = (i * 150) % 800;
            d.process_query(&query(lo, lo + 100)).unwrap();
            assert!(
                d.pool_bytes() <= smax,
                "pool {} exceeds Smax {smax}",
                d.pool_bytes()
            );
        }
    }

    #[test]
    fn eviction_reports_names() {
        let cfg = DeepSeaConfig::default()
            .with_smax(1) // pathological: nothing fits
            .with_min_fragment_bytes(1);
        let mut d = ds(cfg);
        let out = d.process_query(&query(400, 600)).unwrap();
        // Nothing can be admitted into a 1-byte pool...
        assert_eq!(d.pool_bytes(), 0, "{out:?}");
    }

    #[test]
    fn overlapping_mode_keeps_big_fragment() {
        // φ disabled so a large cold fragment survives initial partitioning.
        let cfg = DeepSeaConfig::default()
            .with_min_fragment_bytes(1)
            .without_phi();
        let mut d = ds(cfg);
        d.process_query(&query(400, 600)).unwrap();
        for _ in 0..20 {
            d.process_query(&query(100, 200)).unwrap();
        }
        let view = partitioned_view(&d);
        let ps = view.partitions.values().find(|p| p.any_materialized()).unwrap();
        let mats: Vec<Interval> = ps.materialized().iter().map(|(_, iv)| *iv).collect();
        // The original [0,399] fragment must still be materialized alongside
        // the refined [100,200] — overlap allowed.
        let has_big = mats.iter().any(|iv| iv.contains(&Interval::new(100, 200)) && iv.width() > 101);
        let has_small = mats.iter().any(|iv| *iv == Interval::new(100, 200));
        assert!(has_small, "refined fragment exists: {mats:?}");
        assert!(has_big, "big fragment kept in overlapping mode: {mats:?}");
    }

    #[test]
    fn horizontal_mode_splits_big_fragment() {
        let cfg = DeepSeaConfig::default()
            .with_policy(PartitionPolicy::Progressive {
                overlapping: false,
                repartition: true,
            })
            .with_min_fragment_bytes(1)
            .without_phi();
        let mut d = ds(cfg);
        d.process_query(&query(400, 600)).unwrap();
        for _ in 0..20 {
            d.process_query(&query(100, 200)).unwrap();
        }
        let view = partitioned_view(&d);
        let ps = view.partitions.values().find(|p| p.any_materialized()).unwrap();
        let mats: Vec<Interval> = ps.materialized().iter().map(|(_, iv)| *iv).collect();
        assert!(
            crate::interval::pairwise_disjoint(&mats),
            "horizontal partitioning must stay disjoint: {mats:?}"
        );
        assert!(crate::interval::covers(&mats, &ps.domain));
    }

    #[test]
    fn nectar_value_model_runs_end_to_end() {
        let cfg = DeepSeaConfig::default()
            .with_value_model(ValueModel::Nectar)
            .with_min_fragment_bytes(1)
            .with_smax(4_000_000_000);
        let mut d = ds(cfg);
        for i in 0..5 {
            let lo = (i * 100) % 700;
            let out = d.process_query(&query(lo, lo + 80)).unwrap();
            assert!(out.elapsed_secs > 0.0);
        }
    }

    #[test]
    fn clock_advances_per_query() {
        let mut d = ds(DeepSeaConfig::default());
        assert_eq!(d.clock(), 0);
        d.process_query(&query(0, 10)).unwrap();
        d.process_query(&query(0, 10)).unwrap();
        assert_eq!(d.clock(), 2);
    }
}
