//! View and fragment selection (§7.2–7.3) and materialization layout
//! helpers.
//!
//! Selection ranks `ALLCAND = Vsel ∪ Psel ∪ {materialized fragments}` by
//! value `Φ` and keeps the longest prefix that fits in `Smax`. Anything
//! materialized that falls outside the prefix is evicted; anything new inside
//! the prefix is materialized during the current query's execution.

use crate::filter_tree::ViewId;
use crate::fragment::FragmentId;
use crate::interval::Interval;

/// What a ranked candidate refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateKind {
    /// A whole (unpartitioned) view.
    WholeView(ViewId),
    /// One fragment of a partition `P(view, attr)`.
    Fragment(ViewId, String, FragmentId),
}

/// One entry of `ALLCAND`.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedItem {
    /// What this entry is.
    pub kind: CandidateKind,
    /// Its value `Φ`.
    pub phi: f64,
    /// Its (estimated or actual) size in simulated bytes.
    pub size: u64,
    /// Whether it is currently materialized in the pool.
    pub materialized: bool,
}

/// Outcome of the greedy selection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionResult {
    /// Entries to materialize (currently unmaterialized, selected).
    pub to_create: Vec<RankedItem>,
    /// Entries to evict (currently materialized, not selected).
    pub to_evict: Vec<RankedItem>,
    /// Entries that stay as they are.
    pub to_keep: Vec<RankedItem>,
}

/// Greedy Φ-ranked prefix selection under `smax` (§7.3):
///
/// ```text
/// Ci+1 = { ALLCAND[i] | i ≤ argmax_j Σ_{i≤j} S(ALLCAND[i]) ≤ Smax }
/// ```
///
/// Ties are broken in favor of already-materialized entries (avoids gratuitous
/// churn when Φ values are equal).
pub fn select_configuration(mut items: Vec<RankedItem>, smax: Option<u64>) -> SelectionResult {
    items.sort_by(|a, b| {
        b.phi
            .total_cmp(&a.phi)
            .then_with(|| b.materialized.cmp(&a.materialized))
    });
    let mut result = SelectionResult::default();
    let mut used: u64 = 0;
    let mut full = false;
    for item in items {
        let fits = match smax {
            Some(limit) => !full && used.saturating_add(item.size) <= limit,
            None => true,
        };
        if fits {
            used += item.size;
            if item.materialized {
                result.to_keep.push(item);
            } else {
                result.to_create.push(item);
            }
        } else {
            // The paper keeps the maximal *prefix*: once an item does not
            // fit, everything ranked below is excluded too.
            full = true;
            if item.materialized {
                result.to_evict.push(item);
            }
        }
    }
    result
}

/// Apply the §9 fragment-size bounds to a prospective set of materialization
/// intervals: chop fragments larger than `φ·view_size` into equal pieces and
/// merge fragments smaller than `min_bytes` into their left neighbor.
/// Interval sizes are estimated width-proportionally from `view_size`.
pub fn apply_size_bounds(
    intervals: &[Interval],
    domain: &Interval,
    view_size: u64,
    min_bytes: u64,
    phi_max_fraction: Option<f64>,
) -> Vec<Interval> {
    let bytes_of = |iv: &Interval| -> u64 {
        ((iv.width() as f64 / domain.width() as f64) * view_size as f64).round() as u64
    };
    // Upper bound: chop oversized fragments.
    let mut chopped: Vec<Interval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match phi_max_fraction {
            Some(phi) if phi > 0.0 => {
                let limit = (phi * view_size as f64).max(1.0);
                let size = bytes_of(iv) as f64;
                if size > limit {
                    let k = (size / limit).ceil() as usize;
                    chopped.extend(iv.chop(k));
                } else {
                    chopped.push(*iv);
                }
            }
            _ => chopped.push(*iv),
        }
    }
    // Lower bound: merge undersized fragments into the previous one (or the
    // next, for a leading runt).
    let mut merged: Vec<Interval> = Vec::with_capacity(chopped.len());
    for iv in chopped {
        let too_small = bytes_of(&iv) < min_bytes;
        match merged.last_mut() {
            Some(prev) if too_small && prev.hi + 1 == iv.lo => {
                *prev = Interval::new(prev.lo, iv.hi);
            }
            _ => merged.push(iv),
        }
    }
    // A leading runt merges forward.
    if merged.len() >= 2 && bytes_of(&merged[0]) < min_bytes && merged[0].hi + 1 == merged[1].lo {
        let combined = Interval::new(merged[0].lo, merged[1].hi);
        merged.splice(0..2, [combined]);
    }
    merged
}

/// Value-range boundaries for equi-depth partitioning: split the (sorted)
/// attribute values of the view into `k` near-equal-count runs and return the
/// contiguous intervals covering `domain`.
pub fn equi_depth_intervals(sorted_values: &[i64], k: usize, domain: &Interval) -> Vec<Interval> {
    assert!(k > 0, "need at least one fragment");
    if sorted_values.is_empty() || k == 1 {
        return vec![*domain];
    }
    debug_assert!(sorted_values.windows(2).all(|w| w[0] <= w[1]));
    let n = sorted_values.len();
    let mut bounds: Vec<i64> = Vec::with_capacity(k - 1);
    for i in 1..k {
        let idx = i * n / k;
        let b = sorted_values[idx.min(n - 1)];
        // Boundary is the first value of the next run; must be a valid split
        // point inside the domain and strictly increasing.
        if b > domain.lo && b <= domain.hi && bounds.last().is_none_or(|&p| b > p) {
            bounds.push(b);
        }
    }
    let mut out = Vec::with_capacity(bounds.len() + 1);
    let mut lo = domain.lo;
    for b in bounds {
        out.push(Interval::new(lo, b - 1));
        lo = b;
    }
    out.push(Interval::new(lo, domain.hi));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::is_horizontal_partition;

    fn item(phi: f64, size: u64, materialized: bool, tag: u64) -> RankedItem {
        RankedItem {
            kind: CandidateKind::WholeView(ViewId(tag)),
            phi,
            size,
            materialized,
        }
    }

    #[test]
    fn unbounded_takes_everything() {
        let r = select_configuration(
            vec![item(1.0, 100, false, 0), item(0.5, 100, true, 1)],
            None,
        );
        assert_eq!(r.to_create.len(), 1);
        assert_eq!(r.to_keep.len(), 1);
        assert!(r.to_evict.is_empty());
    }

    #[test]
    fn greedy_prefix_respects_smax() {
        let items = vec![
            item(3.0, 60, true, 0),
            item(2.0, 60, false, 1),
            item(1.0, 10, true, 2),
        ];
        let r = select_configuration(items, Some(100));
        // Prefix: first item (60) fits; second (60) would exceed 100 → stop.
        // Third (size 10) is NOT taken (prefix semantics), and being
        // materialized it is evicted.
        assert_eq!(r.to_keep.len(), 1);
        assert!(r.to_create.is_empty());
        assert_eq!(r.to_evict.len(), 1);
        assert_eq!(r.to_evict[0].kind, CandidateKind::WholeView(ViewId(2)));
    }

    #[test]
    fn higher_phi_wins_slot() {
        let items = vec![item(1.0, 80, true, 0), item(5.0, 80, false, 1)];
        let r = select_configuration(items, Some(100));
        assert_eq!(r.to_create.len(), 1);
        assert_eq!(r.to_create[0].kind, CandidateKind::WholeView(ViewId(1)));
        assert_eq!(r.to_evict.len(), 1, "old item evicted to make space");
    }

    #[test]
    fn tie_prefers_materialized() {
        let items = vec![item(1.0, 80, false, 0), item(1.0, 80, true, 1)];
        let r = select_configuration(items, Some(100));
        assert_eq!(r.to_keep.len(), 1);
        assert_eq!(r.to_keep[0].kind, CandidateKind::WholeView(ViewId(1)));
        assert!(r.to_create.is_empty());
    }

    #[test]
    fn zero_phi_items_still_fit_in_unlimited_pool() {
        let r = select_configuration(vec![item(0.0, 10, false, 0)], None);
        assert_eq!(r.to_create.len(), 1);
    }

    #[test]
    fn equi_depth_uniform_values_near_equal_widths() {
        let values: Vec<i64> = (0..1000).collect();
        let domain = Interval::new(0, 999);
        let parts = equi_depth_intervals(&values, 4, &domain);
        assert_eq!(parts.len(), 4);
        assert!(is_horizontal_partition(&parts, &domain));
        for p in &parts {
            assert!((p.width() as i64 - 250).abs() <= 1, "{p}");
        }
    }

    #[test]
    fn equi_depth_skewed_values_make_small_hot_fragments() {
        // 90% of values in [0,99], 10% in [100,999].
        let mut values: Vec<i64> = (0..900).map(|i| i % 100).collect();
        values.extend((0..100).map(|i| 100 + i * 9));
        values.sort_unstable();
        let domain = Interval::new(0, 999);
        let parts = equi_depth_intervals(&values, 4, &domain);
        assert!(is_horizontal_partition(&parts, &domain));
        // The hot region is covered by narrow fragments.
        assert!(parts[0].width() < 100);
        // The cold tail is one wide fragment.
        assert!(parts.last().unwrap().width() > 500);
    }

    #[test]
    fn equi_depth_duplicate_heavy_values_dedupe_bounds() {
        let values = vec![5; 100];
        let domain = Interval::new(0, 9);
        let parts = equi_depth_intervals(&values, 4, &domain);
        assert!(is_horizontal_partition(&parts, &domain));
        assert!(parts.len() <= 2, "all mass at one value: {parts:?}");
    }

    #[test]
    fn equi_depth_empty_or_k1() {
        let domain = Interval::new(0, 9);
        assert_eq!(equi_depth_intervals(&[], 4, &domain), vec![domain]);
        assert_eq!(equi_depth_intervals(&[1, 2, 3], 1, &domain), vec![domain]);
    }

    #[test]
    fn size_bounds_chop_oversized() {
        let domain = Interval::new(0, 99);
        let out = apply_size_bounds(&[domain], &domain, 1000, 1, Some(0.25));
        assert_eq!(out.len(), 4, "φ=0.25 chops the whole domain in 4");
        assert!(is_horizontal_partition(&out, &domain));
    }

    #[test]
    fn size_bounds_merge_undersized() {
        let domain = Interval::new(0, 99);
        let tiny = vec![
            Interval::new(0, 49),
            Interval::new(50, 51), // ~2% of view: below min
            Interval::new(52, 99),
        ];
        // view_size 1000 → sizes 500, 20, 480; min 100 merges the middle left.
        let out = apply_size_bounds(&tiny, &domain, 1000, 100, None);
        assert_eq!(out, vec![Interval::new(0, 51), Interval::new(52, 99)]);
    }

    #[test]
    fn size_bounds_leading_runt_merges_forward() {
        let domain = Interval::new(0, 99);
        let ivs = vec![Interval::new(0, 1), Interval::new(2, 99)];
        let out = apply_size_bounds(&ivs, &domain, 1000, 100, None);
        assert_eq!(out, vec![Interval::new(0, 99)]);
    }

    #[test]
    fn size_bounds_noop_when_unbounded() {
        let domain = Interval::new(0, 99);
        let ivs = vec![Interval::new(0, 49), Interval::new(50, 99)];
        let out = apply_size_bounds(&ivs, &domain, 1000, 1, None);
        assert_eq!(out, ivs);
    }
}
