//! The serving layer: N logical clients answering queries from published
//! [`ReadSnapshot`]s while a single writer serializes commits — driven by a
//! **deterministic simulated scheduler** in the spirit of the chaos/crash
//! suites.
//!
//! ## Execution model
//!
//! - **Tickets.** Queries carry a global ticket (their index in the
//!   workload). Open-loop arrival times are drawn from a seeded LCG; each
//!   ticket's *read* starts on whichever client frees first (ties break to
//!   the lowest client id), at `max(arrival, client_free)`.
//! - **Reads** run the full read path ([`ReadSnapshot::answer`]) against
//!   the latest snapshot published at their start time. They never touch
//!   the catalog.
//! - **Commits** apply strictly in ticket order: commit *i* becomes
//!   eligible once read *i* has finished and commit *i−1* is done, and
//!   re-runs the full Algorithm-1 pipeline ([`DeepSea::process_query`])
//!   against the writer's live state. The catalog mutation is atomic at
//!   commit start (publish-at-apply): the next snapshot epoch is visible
//!   immediately, while the materialization overhead (`creation_secs`)
//!   occupies the writer until the commit completes.
//! - **Tie-breaking.** When a read start and a commit start fall on the
//!   same instant, the commit goes first — readers see the freshest epoch
//!   an interleaving permits.
//!
//! Because commits are serialized in ticket order and re-run the canonical
//! pipeline, the committed state trajectory — every materialization,
//! eviction, Φ ranking and journal record — is **bit-identical to the
//! single-client serial run**, for every seed and client count.
//! Interleavings only move client latencies and snapshot epochs. Reads are
//! *semantically* identical too (a rewritten plan returns the same rows as
//! the base plan), so a read's result fingerprint always matches the
//! committed one; what may diverge is its *cost* (a stale snapshot may lack
//! a view the writer has since materialized), which the scheduler reports
//! as `divergent_reads` instead of hiding.
//!
//! The whole schedule unfolds in simulated time from one seed — replaying
//! with the same seed reproduces every arrival, interleaving, latency and
//! epoch bit for bit. Real `std::thread` workers behind the
//! `real-threads` feature ([`ViewServer::run_threaded`]) exercise the same
//! commit protocol under genuine preemption.

#[cfg(feature = "real-threads")]
mod workers;

#[cfg(feature = "real-threads")]
pub use workers::ThreadedReport;

use deepsea_engine::exec::ExecError;
use deepsea_engine::plan::LogicalPlan;
use deepsea_obs::SpanCtx;

use crate::driver::DeepSea;
use crate::snapshot::ReadSnapshot;

/// A node-lifecycle action the scheduler applies deterministically as part
/// of a [`ServerConfig::node_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeAction {
    /// Take the node down: reads of files whose every replica lives on down
    /// nodes fail over to fragment-level base-table patching until the node
    /// returns.
    Down,
    /// Bring the node back up; fragments quarantined by the outage are
    /// re-admitted before the next commit.
    Up,
    /// Kill the node permanently: unreplicated data on it is lost and its
    /// fragments are evicted on next touch.
    Kill,
}

/// What the scheduler does with a ticket it decides to shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Refuse the read outright: no execution, no cost, an explicit
    /// rejection record. The ticket's serialized commit still runs — the
    /// writer's state trajectory never depends on shedding.
    #[default]
    Reject,
    /// Serve the answer the stale snapshot can produce by the deadline: the
    /// result is still exact (rewritings are semantically transparent), the
    /// client-visible latency is capped at the deadline, and the execution
    /// cost still occupies the client slot — the work is real and charged.
    ServeStale,
    /// Degrade to the base tables: answer the unrewritten plan directly,
    /// skipping view matching entirely (and with it any view a sick node
    /// has made slow). Exact answer, full cost.
    DegradeBase,
}

impl ShedPolicy {
    /// Canonical name, used in decision events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ShedPolicy::Reject => "reject",
            ShedPolicy::ServeStale => "serve_stale",
            ShedPolicy::DegradeBase => "degrade_base",
        }
    }
}

/// Scheduler parameters: how many logical clients, the seed and mean
/// inter-arrival gap driving the open-loop arrival process, optional
/// deterministic node-failure and slow-node schedules, and the
/// deadline-aware load-shedding knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of logical clients issuing queries (≥ 1).
    pub clients: usize,
    /// Seed for the arrival/interleaving LCG. Same seed ⇒ same schedule,
    /// bit for bit.
    pub seed: u64,
    /// Mean inter-arrival gap in simulated seconds; actual gaps are
    /// `mean_gap_secs * (0.5 + u)` with `u` uniform in `[0, 1)`.
    pub mean_gap_secs: f64,
    /// Node-lifecycle events `(ticket, node, action)`, applied immediately
    /// before commit `ticket` starts (after that ticket's read). Because
    /// commits are serialized in ticket order, the schedule lands at the
    /// same logical point of the state trajectory for every client count.
    /// Empty (the default) means no injected node events; entries naming a
    /// node outside the cluster (or on an unsharded FS) are ignored.
    pub node_schedule: Vec<(usize, u32, NodeAction)>,
    /// Gray-failure events `(ticket, node, latency multiplier)`, applied at
    /// the same commit boundaries as [`ServerConfig::node_schedule`]. A
    /// multiplier > 1.0 makes every read served by that node proportionally
    /// slower (the node stays live and keeps serving); ≤ 1.0 clears the
    /// slowdown. Ignored on an unsharded FS.
    pub slow_schedule: Vec<(usize, u32, f64)>,
    /// Mean per-ticket deadline in simulated seconds after arrival; each
    /// ticket draws `deadline = arrival + deadline_secs * (0.5 + u)` from
    /// the same LCG (after all arrival draws, so arrivals are unchanged by
    /// arming deadlines). `None` disables deadline-based shedding.
    pub deadline_secs: Option<f64>,
    /// Bounded admission queue: when more than this many later tickets have
    /// already arrived and are still waiting at a read's start, the read is
    /// shed with reason `queue_full`. `None` = unbounded.
    pub max_queue: Option<usize>,
    /// What to do with a shed ticket.
    pub shed_policy: ShedPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            clients: 2,
            seed: 1,
            mean_gap_secs: 30.0,
            node_schedule: Vec::new(),
            slow_schedule: Vec::new(),
            deadline_secs: None,
            max_queue: None,
            shed_policy: ShedPolicy::Reject,
        }
    }
}

/// Knuth's MMIX LCG: the deterministic heart of the scheduler. The high 31
/// bits feed the uniform draws (low LCG bits are weak).
#[derive(Debug, Clone, Copy)]
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 * (1.0 / (1u64 << 31) as f64)
    }
}

/// The full lifecycle of one ticket under the simulated scheduler.
#[derive(Debug, Clone)]
pub struct ClientRecord {
    /// Global ticket (index into the workload).
    pub ticket: usize,
    /// The logical client that served the read.
    pub client: usize,
    /// Open-loop arrival time (simulated seconds).
    pub arrival_secs: f64,
    /// When the read actually started (`max(arrival, client free)`).
    pub read_start_secs: f64,
    /// When the read finished; `read_done − arrival` is the client-visible
    /// latency.
    pub read_done_secs: f64,
    /// When this ticket's serialized commit completed.
    pub commit_done_secs: f64,
    /// Client-visible latency (`read_done − arrival`).
    pub latency_secs: f64,
    /// Snapshot epoch the read was answered against.
    pub read_epoch: u64,
    /// Commits the read was behind the serial order (`ticket − read_epoch`).
    pub epoch_lag: u64,
    /// The read's result fingerprint (always equals the committed one —
    /// rewritings are semantically transparent).
    pub read_fingerprint: Vec<String>,
    /// The committed result fingerprint from the serialized pipeline.
    pub committed_fingerprint: Vec<String>,
    /// Simulated execution seconds of the read, against its (possibly
    /// stale) snapshot.
    pub read_query_secs: f64,
    /// Simulated execution seconds of the committed (canonical) execution.
    pub committed_query_secs: f64,
    /// Materialization/eviction overhead charged at commit.
    pub committed_creation_secs: f64,
    /// View used by the read, if any.
    pub read_used_view: Option<String>,
    /// View used by the committed execution, if any.
    pub committed_used_view: Option<String>,
    /// True when the read priced differently than the committed execution
    /// (stale snapshot: a view materialized/evicted after the read's epoch
    /// changed the chosen rewriting).
    pub divergent: bool,
    /// True when the read was served in degraded mode: a node outage forced
    /// fragment-level or whole-query base-table fallback. Degraded reads
    /// still return the exact result; only their cost differs.
    pub degraded: bool,
    /// This ticket's deadline (simulated seconds), when deadlines are armed.
    pub deadline_secs: Option<f64>,
    /// Shed verdict: `Some((policy, reason))` when the scheduler shed this
    /// read — policy is what was done (`reject` / `serve_stale` /
    /// `degrade_base`), reason is why (`deadline_passed` / `queue_full` /
    /// `projected_overrun`). `None` for normally served reads.
    pub shed: Option<(&'static str, &'static str)>,
}

/// The outcome of serving one workload: per-ticket records plus the
/// committed-state summary the determinism tests fingerprint.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-ticket lifecycle records, in ticket order.
    pub records: Vec<ClientRecord>,
    /// Digest of the writer's registry after all commits drained.
    pub state_digest: u64,
    /// Number of reads whose cost diverged from the committed execution.
    pub divergent_reads: u32,
    /// Number of reads served in degraded mode (node outage forced a
    /// fragment-level or whole-query base-table fallback). These tickets
    /// are counted in [`ServeReport::latencies_secs`] like any other —
    /// degradation shows up as latency, never as a missing record.
    pub degraded_reads: u64,
    /// Largest `ticket − read_epoch` over all reads.
    pub max_epoch_lag: u64,
    /// Simulated completion time of the whole schedule.
    pub makespan_secs: f64,
    /// Reads shed by the admission/deadline policy (every one carries a
    /// `shed` verdict on its record; rejected tickets still commit).
    pub shed_reads: u64,
}

impl ServeReport {
    /// The committed result fingerprints, in ticket order — the series that
    /// must be bit-identical to the serial golden capture.
    pub fn committed_fingerprints(&self) -> Vec<Vec<String>> {
        self.records
            .iter()
            .map(|r| r.committed_fingerprint.clone())
            .collect()
    }

    /// The committed per-query execution seconds, in ticket order.
    pub fn committed_query_secs(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.committed_query_secs)
            .collect()
    }

    /// Client-visible latencies, in ticket order.
    pub fn latencies_secs(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.latency_secs).collect()
    }

    /// Exact (nearest-rank, index-rounding) latency percentile over all
    /// tickets. `p` is a fraction in `[0, 1]` — `0.99` for p99. Zero for an
    /// empty report.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        self.percentile_exemplar(p).map_or(0.0, |r| r.latency_secs)
    }

    /// The concrete ticket *behind* a latency percentile: the record whose
    /// latency is the nearest-rank value at `p` (ties break to the lower
    /// ticket, so the exemplar is deterministic). This is what turns "p99 =
    /// 413 s" into "go look at ticket 37's trace".
    pub fn percentile_exemplar(&self, p: f64) -> Option<&ClientRecord> {
        if self.records.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        order.sort_by(|&a, &b| {
            self.records[a]
                .latency_secs
                .total_cmp(&self.records[b].latency_secs)
                .then(a.cmp(&b))
        });
        let idx = ((order.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        Some(&self.records[order[idx]])
    }

    /// Tail exemplars: one entry per occupied latency-histogram bucket
    /// (the observer's log₂ buckets), each linking the bucket to the
    /// slowest concrete ticket that landed in it — and through
    /// `trace_id` to that ticket's causal trace. Ordered by bucket bound.
    pub fn latency_exemplars(&self) -> Vec<LatencyExemplar> {
        use deepsea_obs::metrics::{bucket_of, bucket_upper_bound};
        let mut buckets: std::collections::BTreeMap<usize, LatencyExemplar> =
            std::collections::BTreeMap::new();
        for r in &self.records {
            let b = bucket_of(r.latency_secs);
            let e = buckets.entry(b).or_insert(LatencyExemplar {
                le_secs: bucket_upper_bound(b),
                count: 0,
                ticket: r.ticket,
                trace_id: r.ticket as u64 + 1,
                latency_secs: r.latency_secs,
            });
            e.count += 1;
            if r.latency_secs > e.latency_secs {
                e.ticket = r.ticket;
                e.trace_id = r.ticket as u64 + 1;
                e.latency_secs = r.latency_secs;
            }
        }
        buckets.into_values().collect()
    }
}

/// One latency-histogram bucket tied back to a concrete ticket: the
/// slowest ticket that landed in the bucket, with the trace id of its
/// causal span tree — so a tail bucket in a report links straight to a
/// replayable trace instead of an anonymous aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyExemplar {
    /// Upper bound of the bucket (`+∞` for the overflow bucket).
    pub le_secs: f64,
    /// Tickets whose latency landed in this bucket.
    pub count: u64,
    /// The slowest such ticket (ties keep the earliest).
    pub ticket: usize,
    /// Its causal trace id (`ticket + 1`).
    pub trace_id: u64,
    /// Its recorded latency.
    pub latency_secs: f64,
}

/// A DeepSea instance wrapped in the multi-client serving layer.
pub struct ViewServer {
    ds: DeepSea,
    cfg: ServerConfig,
}

impl ViewServer {
    /// Wrap a driver. The execution backend must support
    /// [`deepsea_engine::ExecutionBackend::fork_reader`] so snapshot
    /// readers can price I/O independently of the writer.
    ///
    /// # Panics
    /// If the backend cannot fork read-only copies.
    pub fn new(ds: DeepSea, cfg: ServerConfig) -> Self {
        assert!(
            ds.publish_snapshot().is_some(),
            "ViewServer requires a backend that supports fork_reader()"
        );
        Self { ds, cfg }
    }

    /// The wrapped driver (e.g. to inspect the registry between workloads).
    pub fn driver(&self) -> &DeepSea {
        &self.ds
    }

    /// Unwrap the driver.
    pub fn into_inner(self) -> DeepSea {
        self.ds
    }

    /// Serve one workload under the deterministic simulated scheduler.
    ///
    /// Commits are serialized in ticket order, so the committed state and
    /// outcome series are bit-identical to calling
    /// [`DeepSea::process_query`] on the same plans one by one — for every
    /// seed and client count. See the module docs for the event model.
    pub fn run(&mut self, plans: &[LogicalPlan]) -> Result<ServeReport, ExecError> {
        let n = plans.len();
        let clients = self.cfg.clients.max(1);
        let mut lcg = Lcg(self.cfg.seed);

        // Open-loop arrivals: the whole arrival process is fixed up front by
        // the seed, independent of service times (clients queue, arrivals
        // don't wait).
        let mut arrivals = Vec::with_capacity(n);
        let mut t = 0.0f64;
        for _ in 0..n {
            t += self.cfg.mean_gap_secs * (0.5 + lcg.next_f64());
            arrivals.push(t);
        }

        // Per-ticket deadlines draw *after* every arrival draw, so arming
        // deadlines never perturbs the arrival schedule itself.
        let deadlines: Option<Vec<f64>> = self.cfg.deadline_secs.map(|d| {
            arrivals
                .iter()
                .map(|&a| a + d * (0.5 + lcg.next_f64()))
                .collect()
        });

        let mut snapshot: ReadSnapshot = self
            .ds
            .publish_snapshot()
            .expect("invariant: forkability is checked in ViewServer::new");
        let obs = self.ds.observer().clone();
        let spans_on = obs.spans_enabled();
        let schedule = self.cfg.node_schedule.clone();
        let slow_schedule = self.cfg.slow_schedule.clone();
        // Per-ticket causal roots (trace id = ticket + 1), so the serialized
        // commit — which lands much later in the event loop — can attach its
        // write-path spans to the right trace.
        let mut trace_roots: Vec<SpanCtx> = Vec::with_capacity(n);

        let mut client_free = vec![0.0f64; clients];
        let mut records: Vec<ClientRecord> = Vec::with_capacity(n);
        let mut next_read = 0usize; // next ticket to start reading
        let mut next_commit = 0usize; // next ticket to commit
        let mut writer_free = 0.0f64;
        let mut divergent_reads = 0u32;
        let mut degraded_reads = 0u64;
        let mut max_epoch_lag = 0u64;
        let mut shed_reads = 0u64;
        // Running mean of served read costs, feeding the projected-overrun
        // shed check. Deterministic: simulated seconds only.
        let mut served_secs_sum = 0.0f64;
        let mut served_count = 0u64;

        while next_commit < n {
            // Earliest possible read start: the next ticket, on whichever
            // client frees first (ties to the lowest id — deterministic).
            let read_ev = (next_read < n).then(|| {
                let (k, free) = client_free
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by(|(ak, af), (bk, bf)| af.total_cmp(bf).then(ak.cmp(bk)))
                    .expect("invariant: clients is clamped to >= 1");
                (arrivals[next_read].max(free), k)
            });
            // Earliest possible commit: strictly in ticket order, once its
            // read is done and the writer is free.
            let commit_ev = (next_commit < next_read)
                .then(|| records[next_commit].read_done_secs.max(writer_free));

            let do_commit = match (commit_ev, read_ev) {
                // Tie → commit first: readers see the freshest epoch.
                (Some(ct), Some((rt, _))) => ct <= rt,
                (Some(_), None) => true,
                // While commits remain and none is eligible, a read must be
                // pending (reads precede their own commit in ticket order).
                (None, _) => false,
            };

            if do_commit {
                let start =
                    commit_ev.expect("invariant: do_commit implies an eligible commit event");
                let ticket = next_commit;
                // Scheduled node events land at commit boundaries: the same
                // logical point of the state trajectory for every client
                // count, so the committed series stays schedule-determined.
                for &(when, node, action) in &schedule {
                    if when == ticket {
                        self.apply_node_action(node, action, &obs);
                    }
                }
                for &(when, node, multiplier) in &slow_schedule {
                    if when == ticket {
                        self.apply_slow_action(node, multiplier, &obs);
                    }
                }
                // Attach the commit's write-path spans to the ticket trace.
                if spans_on {
                    self.ds.begin_ticket_span(trace_roots[ticket], start);
                }
                let outcome = self.ds.process_query(&plans[ticket])?;
                // Publish-at-apply: the new epoch is visible from commit
                // start; creation overhead occupies the writer afterwards.
                snapshot = self
                    .ds
                    .publish_snapshot()
                    .expect("invariant: a backend that forked once forks again");
                writer_free = start + outcome.creation_secs;

                let rec = &mut records[ticket];
                rec.commit_done_secs = writer_free;
                rec.committed_fingerprint = outcome.result.fingerprint();
                rec.committed_query_secs = outcome.query_secs;
                rec.committed_creation_secs = outcome.creation_secs;
                rec.committed_used_view = outcome.used_view.clone();
                // Shed reads are deliberately not the canonical execution —
                // comparing their cost to the committed one would just count
                // the shed again, so divergence tracks served reads only.
                rec.divergent = rec.shed.is_none()
                    && (rec.read_query_secs.to_bits() != outcome.query_secs.to_bits()
                        || rec.read_used_view != outcome.used_view);
                if rec.divergent {
                    divergent_reads += 1;
                    obs.counter_inc("deepsea_server_divergent_reads_total", None);
                }
                obs.counter_inc("deepsea_server_commits_total", None);
                next_commit += 1;
            } else {
                let (start, k) =
                    read_ev.expect("invariant: commits pending implies a read event exists");
                let ticket = next_read;
                let deadline = deadlines.as_ref().map(|d| d[ticket]);

                // ── Admission / deadline shed decision ───────────────────
                // Checked in severity order; all inputs are schedule-derived
                // simulated quantities, so the verdict replays bit-for-bit.
                let mut shed_reason: Option<&'static str> = None;
                if deadline.is_some_and(|d| start > d) {
                    shed_reason = Some("deadline_passed");
                }
                if shed_reason.is_none() {
                    if let Some(q) = self.cfg.max_queue {
                        let waiting = arrivals[ticket + 1..]
                            .iter()
                            .filter(|&&a| a <= start)
                            .count();
                        if waiting > q {
                            shed_reason = Some("queue_full");
                        }
                    }
                }
                if shed_reason.is_none() && served_count > 0 {
                    let projected = served_secs_sum / served_count as f64;
                    if deadline.is_some_and(|d| start + projected > d) {
                        shed_reason = Some("projected_overrun");
                    }
                }

                let policy = self.cfg.shed_policy;
                let shed = shed_reason.map(|reason| (policy.name(), reason));
                if let Some(reason) = shed_reason {
                    shed_reads += 1;
                    obs.counter_inc("deepsea_shed_reads_total", None);
                    obs.counter_inc("deepsea_shed_reads_total", Some(reason));
                    if obs.events_enabled() {
                        obs.event(
                            ticket as u64 + 1,
                            deepsea_obs::DecisionEvent::Shed {
                                ticket: ticket as u64,
                                policy: policy.name(),
                                reason,
                                deadline_secs: deadline.unwrap_or(0.0),
                            },
                        );
                    }
                }

                // Causal identities are fixed *before* the read runs so the
                // read path can attach its spans; the spans themselves are
                // completed post hoc once the latency is known.
                let tn = ticket as u64 + 1;
                let trace_root = if spans_on {
                    obs.alloc_span(SpanCtx::root(tn))
                } else {
                    SpanCtx::NONE
                };
                let executes = !matches!((shed_reason, policy), (Some(_), ShedPolicy::Reject));
                let read_ctx = if spans_on && executes {
                    obs.alloc_span(trace_root)
                } else {
                    SpanCtx::NONE
                };

                // Hedge accounting is scoped to this read by differencing the
                // shared FS counters around the execution.
                let hedges_before = self.ds.fs().fault_stats();
                let ans = match (shed_reason, policy) {
                    (Some(_), ShedPolicy::Reject) => None,
                    (Some(_), ShedPolicy::DegradeBase) => {
                        Some(snapshot.answer_base_in_span(&plans[ticket], read_ctx, start)?)
                    }
                    _ => Some(snapshot.answer_in_span(&plans[ticket], read_ctx, start)?),
                };
                if let Some(a) = &ans {
                    let after = self.ds.fs().fault_stats();
                    let issued = after.hedges_issued - hedges_before.hedges_issued;
                    if issued > 0 {
                        let won = after.hedges_won - hedges_before.hedges_won;
                        let cancelled = after.hedges_cancelled - hedges_before.hedges_cancelled;
                        obs.counter_add("deepsea_hedges_total", Some("issued"), issued);
                        obs.counter_add("deepsea_hedges_total", Some("won"), won);
                        obs.counter_add("deepsea_hedges_total", Some("cancelled"), cancelled);
                        if obs.events_enabled() {
                            obs.event(
                                tn,
                                deepsea_obs::DecisionEvent::HedgedRead {
                                    ticket: ticket as u64,
                                    issued,
                                    won,
                                    cancelled,
                                },
                            );
                        }
                    }
                    if a.trace.recovery.fragment_fallbacks > 0 {
                        obs.counter_add(
                            "deepsea_fragment_fallbacks_total",
                            None,
                            a.trace.recovery.fragment_fallbacks as u64,
                        );
                    }
                }

                // Degraded reads (node outage forced fragment patching or a
                // whole-query base fallback) return the exact result and are
                // recorded like any other ticket — their latency includes the
                // fallback cost instead of the ticket being dropped.
                let degraded = ans.as_ref().is_some_and(|a| {
                    a.trace.recovery.fragment_fallbacks > 0
                        || a.trace.recovery.base_table_fallbacks > 0
                });
                if degraded {
                    degraded_reads += 1;
                    obs.counter_inc("deepsea_degraded_reads_total", None);
                }
                let query_secs = ans.as_ref().map_or(0.0, |a| a.query_secs);
                let done = start + query_secs;
                client_free[k] = done;
                // Commits can't outrun reads (commit i needs read i done),
                // so epoch ≤ ticket; the lag is how many commits this read
                // missed relative to the serial order.
                let epoch = ans.as_ref().map_or_else(|| snapshot.epoch(), |a| a.epoch);
                let lag = (ticket as u64).saturating_sub(epoch);
                max_epoch_lag = max_epoch_lag.max(lag);
                // A stale-served read is handed back at its deadline (the
                // exact answer its stale epoch could produce in time); a
                // rejected one learns its fate the moment it is scheduled.
                let latency = match (shed_reason, policy) {
                    (Some(_), ShedPolicy::Reject) => start - arrivals[ticket],
                    (Some(_), ShedPolicy::ServeStale) => {
                        deadline.map_or(done, |d| done.min(d)) - arrivals[ticket]
                    }
                    _ => done - arrivals[ticket],
                };

                if shed_reason.is_none() {
                    served_secs_sum += query_secs;
                    served_count += 1;
                    obs.observe("deepsea_client_latency_secs", None, latency);
                    let label = format!("client{k}");
                    obs.observe("deepsea_client_latency_secs", Some(&label), latency);
                    obs.observe("deepsea_snapshot_epoch_lag", None, lag as f64);
                }

                let (read_fingerprint, read_query_secs, read_used_view) = match ans {
                    Some(a) => (a.result.fingerprint(), a.query_secs, a.used_view),
                    None => (Vec::new(), 0.0, None),
                };

                // Complete the ticket's causal tree post hoc — every duration
                // is analytically known now. The root covers arrival →
                // client-visible completion, so the critical path's self
                // times telescope to exactly the reported latency.
                if spans_on {
                    let arrival = arrivals[ticket];
                    let label = format!("client{k}");
                    obs.record_span_at(
                        trace_root,
                        tn,
                        "ticket",
                        Some(&label),
                        SpanCtx::root(tn),
                        arrival,
                        arrival + latency,
                    );
                    if start > arrival {
                        obs.record_span(tn, "queue_wait", None, trace_root, arrival, start);
                    }
                    if let Some((policy_name, reason)) = shed {
                        let verdict = format!("{policy_name}:{reason}");
                        obs.record_span(tn, "shed", Some(&verdict), trace_root, start, start);
                    }
                    obs.record_span_at(
                        read_ctx,
                        tn,
                        "read",
                        read_used_view.as_deref(),
                        trace_root,
                        start,
                        done,
                    );
                }
                trace_roots.push(trace_root);
                records.push(ClientRecord {
                    ticket,
                    client: k,
                    arrival_secs: arrivals[ticket],
                    read_start_secs: start,
                    read_done_secs: done,
                    commit_done_secs: 0.0,
                    latency_secs: latency,
                    read_epoch: epoch,
                    epoch_lag: lag,
                    read_fingerprint,
                    committed_fingerprint: Vec::new(),
                    read_query_secs,
                    committed_query_secs: 0.0,
                    committed_creation_secs: 0.0,
                    read_used_view,
                    committed_used_view: None,
                    divergent: false,
                    degraded,
                    deadline_secs: deadline,
                    shed,
                });
                next_read += 1;
            }
        }

        let makespan_secs = records
            .iter()
            .map(|r| r.read_done_secs)
            .fold(writer_free, f64::max);
        obs.gauge_set("deepsea_server_makespan_secs", None, makespan_secs);

        Ok(ServeReport {
            state_digest: self.ds.registry().state_digest(),
            records,
            divergent_reads,
            degraded_reads,
            max_epoch_lag,
            makespan_secs,
            shed_reads,
        })
    }

    /// Apply one scheduled gray-failure action: a multiplier > 1.0 opens (or
    /// widens) a slow window on the node, ≤ 1.0 clears it. The node keeps
    /// serving throughout — slowness is orthogonal to liveness. Ignored on
    /// an unsharded FS or for unknown node ids, like node actions.
    fn apply_slow_action(&self, node: u32, multiplier: f64, obs: &deepsea_obs::Observer) {
        use deepsea_storage::NodeId;
        let tnow = self.ds.clock();
        // The FS state change happens regardless of observability; only the
        // event assembly (label formatting included) is gated.
        if multiplier > 1.0 {
            if self.ds.fs().set_node_slow(NodeId(node), multiplier) && obs.events_enabled() {
                obs.event(
                    tnow,
                    deepsea_obs::DecisionEvent::NodeSlow {
                        node: format!("node{node}"),
                        multiplier,
                    },
                );
            }
        } else if self.ds.fs().clear_node_slow(NodeId(node)) && obs.events_enabled() {
            obs.event(
                tnow,
                deepsea_obs::DecisionEvent::NodeSlowCleared {
                    node: format!("node{node}"),
                },
            );
        }
    }

    /// Apply one scheduled node-lifecycle action through the shared FS and
    /// record it as a typed decision event. Silently ignored on an unsharded
    /// FS or for a node id outside the cluster — a schedule written for a
    /// 4-node sweep stays valid when replayed against a smaller topology.
    fn apply_node_action(&self, node: u32, action: NodeAction, obs: &deepsea_obs::Observer) {
        use deepsea_storage::NodeId;
        let tnow = self.ds.clock();
        let applied = match action {
            NodeAction::Down => self.ds.fs().set_node_down(NodeId(node)),
            NodeAction::Up => self.ds.fs().set_node_up(NodeId(node)),
            NodeAction::Kill => self.ds.fs().kill_node(NodeId(node)),
        };
        if applied && obs.events_enabled() {
            let label = format!("node{node}");
            let event = match action {
                NodeAction::Down => deepsea_obs::DecisionEvent::NodeDown { node: label },
                NodeAction::Up => deepsea_obs::DecisionEvent::NodeUp { node: label },
                NodeAction::Kill => deepsea_obs::DecisionEvent::NodeKilled { node: label },
            };
            obs.event(tnow, event);
        }
    }
}
