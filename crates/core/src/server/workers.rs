//! Real `std::thread` workers behind `--features real-threads`: the same
//! ticket/commit protocol as the simulated scheduler, under genuine
//! preemption.
//!
//! K worker threads pull tickets from a shared counter, answer each against
//! the latest snapshot loaded from an [`EpochCell`], and stream
//! `(ticket, answer)` back over a channel. The writer (the calling thread)
//! buffers out-of-order arrivals and applies commits strictly in ticket
//! order, republishing the cell after each — so the committed state is
//! bit-identical to the serial run even though reads race freely with
//! publication.
//!
//! What is deliberately **not** asserted here: latencies and epochs. OS
//! scheduling decides which epoch a worker loads, so those are
//! nondeterministic by nature; the determinism claims live entirely on the
//! committed side. A reader that loses a race with eviction (its snapshot
//! names a file the writer has since deleted) falls back to base tables
//! inside `ReadView::answer` — the answer stays correct, the race costs
//! only simulated time.
//!
//! This module (via its parent) is the single sanctioned `std::thread` user
//! outside the storage/bench/lint crates; `deepsea-lint` L1 pins that
//! allowlist.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use deepsea_engine::exec::ExecError;
use deepsea_engine::plan::LogicalPlan;
use deepsea_storage::EpochCell;

use crate::snapshot::{ReadSnapshot, SnapshotAnswer};

use super::ViewServer;

/// Per-ticket outcome of a threaded run: what raced (the read) and what
/// didn't (the committed execution).
#[derive(Debug, Clone)]
pub struct ThreadedRecord {
    /// Global ticket (index into the workload).
    pub ticket: usize,
    /// Snapshot epoch the racing read was answered against.
    pub read_epoch: u64,
    /// The read's result fingerprint.
    pub read_fingerprint: Vec<String>,
    /// The committed result fingerprint from the serialized pipeline.
    pub committed_fingerprint: Vec<String>,
    /// Simulated execution seconds of the committed execution.
    pub committed_query_secs: f64,
}

/// The outcome of a threaded run: committed state plus the racy read record.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Per-ticket records, in ticket order.
    pub records: Vec<ThreadedRecord>,
    /// Digest of the writer's registry after all commits drained.
    pub state_digest: u64,
}

impl ViewServer {
    /// Serve one workload with real worker threads. Commits serialize in
    /// ticket order on the calling thread; reads race on `clients` workers.
    pub fn run_threaded(&mut self, plans: &[LogicalPlan]) -> Result<ThreadedReport, ExecError> {
        let n = plans.len();
        let clients = self.cfg.clients.max(1);
        let cell: EpochCell<ReadSnapshot> = EpochCell::new(
            self.ds
                .publish_snapshot()
                .expect("invariant: forkability is checked in ViewServer::new"),
        );
        let next_ticket = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, u64, Result<SnapshotAnswer, ExecError>)>();

        let mut records: Vec<ThreadedRecord> = Vec::with_capacity(n);
        std::thread::scope(|s| -> Result<(), ExecError> {
            for _ in 0..clients {
                let tx = tx.clone();
                let cell = &cell;
                let next_ticket = &next_ticket;
                s.spawn(move || loop {
                    let ticket = next_ticket.fetch_add(1, Ordering::SeqCst);
                    if ticket >= n {
                        break;
                    }
                    let (epoch, snap) = cell.load();
                    let answer = snap.answer(&plans[ticket]);
                    // The writer hanging up early (on error) is fine.
                    if tx.send((ticket, epoch, answer)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // The writer: buffer out-of-order arrivals, commit in ticket
            // order, republish after every commit.
            let mut buffered: BTreeMap<usize, (u64, Result<SnapshotAnswer, ExecError>)> =
                BTreeMap::new();
            let mut next_commit = 0usize;
            for (ticket, epoch, answer) in rx {
                buffered.insert(ticket, (epoch, answer));
                while let Some((epoch, answer)) = buffered.remove(&next_commit) {
                    let answer = answer?;
                    let outcome = self.ds.process_query(&plans[next_commit])?;
                    cell.publish_at(
                        self.ds.clock(),
                        self.ds
                            .publish_snapshot()
                            .expect("invariant: a backend that forked once forks again"),
                    );
                    records.push(ThreadedRecord {
                        ticket: next_commit,
                        read_epoch: epoch,
                        read_fingerprint: answer.result.fingerprint(),
                        committed_fingerprint: outcome.result.fingerprint(),
                        committed_query_secs: outcome.query_secs,
                    });
                    next_commit += 1;
                }
            }
            debug_assert_eq!(next_commit, n, "every ticket must commit");
            Ok(())
        })?;

        Ok(ThreadedReport {
            state_digest: self.ds.registry().state_digest(),
            records,
        })
    }
}
