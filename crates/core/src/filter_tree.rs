//! A filter tree over view signatures (§8.3).
//!
//! Goldstein & Larson's filter tree indexes views level by level on parts of
//! their signature so that matching a query against a large pool never
//! evaluates the full sufficient condition on most views. Our matching
//! condition requires *equality* of (a) the base-relation multiset and (b)
//! the join-pair set, so those two levels prune losslessly; the full
//! condition ([`deepsea_engine::signature::matches`]) runs only on the
//! surviving leaf entries.

use std::collections::BTreeMap;

use deepsea_engine::Signature;

/// Identifier of a view in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(pub u64);

/// Two-level signature index: relations key → join key → view ids.
#[derive(Debug, Default, Clone)]
pub struct FilterTree {
    root: BTreeMap<String, BTreeMap<String, Vec<ViewId>>>,
    len: usize,
}

fn relations_key(sig: &Signature) -> String {
    let mut s = String::new();
    for (t, n) in &sig.relations {
        s.push_str(t);
        s.push('*');
        s.push_str(&n.to_string());
        s.push(';');
    }
    s
}

fn join_key(sig: &Signature) -> String {
    let mut s = String::new();
    for (a, b) in &sig.join_pairs {
        s.push_str(a);
        s.push('=');
        s.push_str(b);
        s.push(';');
    }
    s
}

impl FilterTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed views.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no views are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index a view's signature.
    pub fn insert(&mut self, sig: &Signature, id: ViewId) {
        self.root
            .entry(relations_key(sig))
            .or_default()
            .entry(join_key(sig))
            .or_default()
            .push(id);
        self.len += 1;
    }

    /// Remove a view from the index (quarantine). Returns whether the view
    /// was present; empty buckets are pruned so `bucket_count` stays honest.
    pub fn remove(&mut self, sig: &Signature, id: ViewId) -> bool {
        let rkey = relations_key(sig);
        let Some(joins) = self.root.get_mut(&rkey) else {
            return false;
        };
        let jkey = join_key(sig);
        let Some(ids) = joins.get_mut(&jkey) else {
            return false;
        };
        let Some(pos) = ids.iter().position(|&v| v == id) else {
            return false;
        };
        ids.remove(pos);
        if ids.is_empty() {
            joins.remove(&jkey);
        }
        if joins.is_empty() {
            self.root.remove(&rkey);
        }
        self.len -= 1;
        true
    }

    /// Views that *may* match a query with this signature (must still pass
    /// the full sufficient condition).
    pub fn lookup(&self, query: &Signature) -> &[ViewId] {
        self.root
            .get(&relations_key(query))
            .and_then(|m| m.get(&join_key(query)))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of top-level (relations) buckets — exposed for tests and
    /// instrumentation.
    pub fn bucket_count(&self) -> usize {
        self.root.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_engine::LogicalPlan;
    use deepsea_relation::Predicate;

    fn sig(plan: &LogicalPlan) -> Signature {
        Signature::of(plan).unwrap()
    }

    #[test]
    fn lookup_prunes_by_relations_and_joins() {
        let mut ft = FilterTree::new();
        let j_ab = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let j_ac = LogicalPlan::scan("a").join(LogicalPlan::scan("c"), vec![("a.k", "c.k")]);
        ft.insert(&sig(&j_ab), ViewId(1));
        ft.insert(&sig(&j_ac), ViewId(2));
        assert_eq!(ft.len(), 2);
        assert_eq!(ft.lookup(&sig(&j_ab)), &[ViewId(1)]);
        assert_eq!(ft.lookup(&sig(&j_ac)), &[ViewId(2)]);
        assert!(ft.lookup(&sig(&LogicalPlan::scan("a"))).is_empty());
        assert_eq!(ft.bucket_count(), 2);
    }

    #[test]
    fn same_shape_different_ranges_share_bucket() {
        let mut ft = FilterTree::new();
        let base = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let v1 = base.clone().select(Predicate::range("a.k", 0, 10));
        let v2 = base.clone().select(Predicate::range("a.k", 5, 50));
        ft.insert(&sig(&v1), ViewId(1));
        ft.insert(&sig(&v2), ViewId(2));
        // A query over the same join lands in the same bucket and sees both.
        let q = base.select(Predicate::range("a.k", 6, 9));
        assert_eq!(ft.lookup(&sig(&q)), &[ViewId(1), ViewId(2)]);
    }

    #[test]
    fn join_pair_order_does_not_split_buckets() {
        let mut ft = FilterTree::new();
        let j1 = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let j2 = LogicalPlan::scan("b").join(LogicalPlan::scan("a"), vec![("b.k", "a.k")]);
        ft.insert(&sig(&j1), ViewId(1));
        assert_eq!(ft.lookup(&sig(&j2)), &[ViewId(1)]);
    }

    #[test]
    fn empty_tree() {
        let ft = FilterTree::new();
        assert!(ft.is_empty());
        assert!(ft.lookup(&sig(&LogicalPlan::scan("a"))).is_empty());
    }

    #[test]
    fn remove_strips_view_and_prunes_buckets() {
        let mut ft = FilterTree::new();
        let base = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let s = sig(&base);
        ft.insert(&s, ViewId(1));
        ft.insert(&s, ViewId(2));
        assert!(ft.remove(&s, ViewId(1)));
        assert_eq!(ft.lookup(&s), &[ViewId(2)]);
        assert_eq!(ft.len(), 1);
        assert!(!ft.remove(&s, ViewId(1)), "double remove is a no-op");
        assert!(ft.remove(&s, ViewId(2)));
        assert!(ft.is_empty());
        assert_eq!(ft.bucket_count(), 0, "empty buckets are pruned");
        // Removed views can be re-inserted (quarantine re-admission).
        ft.insert(&s, ViewId(2));
        assert_eq!(ft.lookup(&s), &[ViewId(2)]);
    }
}
