//! # deepsea-core
//!
//! The primary contribution of *"DeepSea: Progressive Workload-Aware
//! Partitioning of Materialized Views in Scalable Data Analytics"*
//! (Du, Glavic, Tan, Miller — EDBT 2017), implemented over the
//! `deepsea-engine` / `deepsea-storage` substrates:
//!
//! - **Interval & fragment algebra** ([`interval`], [`fragment`]) —
//!   horizontal and *overlapping* partitionings (Definitions 1–2),
//! - **Candidate generation** ([`candidates`]) — view candidates
//!   (Definition 6) and the five-case partition-candidate rules
//!   (Definition 7),
//! - **Partition matching** ([`matching`]) — the greedy fragment set-cover
//!   (Algorithm 2),
//! - **Signature index** ([`filter_tree`]) — a filter-tree over view
//!   signatures for fast candidate pruning (§8.3),
//! - **Statistics & cost–benefit model** ([`stats`]) — decay function,
//!   accumulated benefit `B`, value `Φ = COST·B/S` for views and fragments
//!   (§7.1),
//! - **Probabilistic fragment-benefit model** ([`mle`]) — maximum-likelihood
//!   normal fit over quantized fragment hits and adjusted hits `HA` (§7.1),
//! - **Selection** ([`selection`]) — candidate filtering (`COST ≤ B`) and
//!   greedy `Φ`-ranked knapsack under the pool limit `Smax` (§7.2–7.3),
//! - **The online driver** ([`driver`]) — Algorithm 1 `ProcessQuery` as a
//!   staged pipeline (matching → rewriting → candidates → selection →
//!   execute/materialize → evict), each stage its own submodule, with
//!   per-stage [`driver::QueryTrace`] instrumentation and a pluggable
//!   execution backend,
//! - **Fragment merging** ([`merging`]) — the §11 extension: re-merge
//!   consecutive fragments that are always accessed together,
//! - **Crash-restart durability** ([`durability`]) — a catalog journal of
//!   every registry mutation with periodic snapshots, cold-start replay
//!   (`DeepSea::recover`), and an fsck sweep reconciling the catalog with
//!   the file system (orphan GC, missing/corrupt-file quarantine),
//! - **Baselines** ([`policy`], [`baselines`]) — vanilla Hive (H),
//!   non-partitioned materialization (NP), Nectar (N), Nectar+ (N+),
//!   equi-depth partitioning (E-k), and DeepSea without repartitioning (NR),
//! - **Serving layer** ([`snapshot`], [`server`]) — immutable catalog
//!   snapshots published per committed epoch, a deterministic multi-client
//!   scheduler replaying seeded interleavings bit-identically, and real
//!   `std::thread` workers behind `--features real-threads`.

pub mod baselines;
pub mod breaker;
pub mod candidates;
pub mod config;
pub mod driver;
pub mod durability;
pub mod filter_tree;
pub mod fragment;
pub mod interval;
pub mod matching;
pub mod merging;
pub mod mle;
pub mod policy;
pub mod registry;
pub mod selection;
pub mod server;
pub mod snapshot;
pub mod stats;

pub use breaker::{BreakerConfig, BreakerDecision, BreakerSet, BreakerTransition};
pub use config::DeepSeaConfig;
pub use deepsea_obs::{DecisionEvent, EventRecord, ObsConfig, Observer, PhiBreakdown, SpanCtx};
pub use driver::{DeepSea, QueryOutcome, QueryTrace, RecoveryTrace};
pub use durability::{CatalogJournal, CatalogRecord, CatalogSnapshot, FsckReport};
pub use interval::Interval;
pub use policy::{PartitionPolicy, ValueModel};
pub use server::{
    ClientRecord, LatencyExemplar, NodeAction, ServeReport, ServerConfig, ShedPolicy, ViewServer,
};
pub use snapshot::{ReadSnapshot, SnapshotAnswer};
