//! DeepSea configuration.

use deepsea_engine::RetryPolicy;
use deepsea_storage::BlockConfig;

use crate::policy::{PartitionPolicy, ValueModel};
use crate::stats::LogicalTime;

/// Configuration of a DeepSea instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepSeaConfig {
    /// Pool size limit `Smax` in simulated bytes (`None` = unbounded).
    pub smax: Option<u64>,
    /// Decay cutoff `tmax` in logical time (queries); benefits older than
    /// this contribute nothing (§7.1).
    pub tmax: LogicalTime,
    /// Selection strategy.
    pub value_model: ValueModel,
    /// Physical layout policy.
    pub partition_policy: PartitionPolicy,
    /// Lower bound on fragment size — "we use the file system's block size
    /// as the lower bound for fragment size" (§9). Fragments smaller than
    /// this are merged with a neighbor at materialization time.
    pub min_fragment_bytes: u64,
    /// Optional upper bound φ on a fragment's size *relative to its view*
    /// (§9 "Bounding Fragment Size"): fragments larger than `φ · S(V)` are
    /// chopped into equal pieces at materialization time. The headline
    /// partitioning experiments of §10.2 run with this unset.
    pub phi_max_fraction: Option<f64>,
    /// Retry budget and backoff for transient I/O failures during
    /// materialization and maintenance reads. Execution-path retries are the
    /// backend's business (see `RetryingBackend`); this governs the driver's
    /// own fragment reads and writes.
    pub retry: RetryPolicy,
    /// When a catalog journal is attached, emit a statistics checkpoint
    /// record every this many queries (benefit events and fragment hits are
    /// too chatty to journal individually; a crash loses at most this many
    /// queries' worth of statistics, never structural state).
    pub journal_checkpoint_every: LogicalTime,
    /// When a catalog journal is attached, install a full-state snapshot
    /// (truncating the record log) every this many queries.
    pub journal_snapshot_every: LogicalTime,
    /// Per-query retry budget in simulated seconds, shared across every
    /// operation of the query (a token bucket armed on the backend at query
    /// start). `None` = legacy unbudgeted behaviour; only the retry policy's
    /// per-op bounds apply.
    pub retry_budget_secs: Option<f64>,
    /// Per-(view, node) circuit-breaker thresholds for the read path.
    /// Disabled by default (`failure_threshold: 0`), which keeps every
    /// existing fault schedule bit-identical.
    pub breaker: crate::breaker::BreakerConfig,
}

impl Default for DeepSeaConfig {
    fn default() -> Self {
        Self {
            smax: None,
            tmax: 500,
            value_model: ValueModel::DeepSea { use_mle: true },
            partition_policy: PartitionPolicy::Progressive {
                overlapping: true,
                repartition: true,
            },
            min_fragment_bytes: BlockConfig::default().block_bytes,
            phi_max_fraction: None,
            retry: RetryPolicy::default(),
            journal_checkpoint_every: 10,
            journal_snapshot_every: 25,
            retry_budget_secs: None,
            breaker: crate::breaker::BreakerConfig::disabled(),
        }
    }
}

impl DeepSeaConfig {
    /// Builder-style: set the pool limit.
    pub fn with_smax(mut self, smax: u64) -> Self {
        self.smax = Some(smax);
        self
    }

    /// Builder-style: set the value model.
    pub fn with_value_model(mut self, vm: ValueModel) -> Self {
        self.value_model = vm;
        self
    }

    /// Builder-style: set the partition policy.
    pub fn with_policy(mut self, p: PartitionPolicy) -> Self {
        self.partition_policy = p;
        self
    }

    /// Builder-style: set the decay cutoff.
    pub fn with_tmax(mut self, tmax: LogicalTime) -> Self {
        self.tmax = tmax;
        self
    }

    /// Builder-style: set the φ fragment-size bound.
    pub fn with_phi(mut self, phi: f64) -> Self {
        self.phi_max_fraction = Some(phi);
        self
    }

    /// Builder-style: disable the φ fragment-size bound (§10.2: "we do not
    /// bound the size of the largest fragment").
    pub fn without_phi(mut self) -> Self {
        self.phi_max_fraction = None;
        self
    }

    /// Builder-style: set the minimum fragment size.
    pub fn with_min_fragment_bytes(mut self, b: u64) -> Self {
        self.min_fragment_bytes = b;
        self
    }

    /// Builder-style: set the transient-I/O retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style: arm a per-query retry budget (simulated seconds).
    pub fn with_retry_budget(mut self, secs: f64) -> Self {
        self.retry_budget_secs = Some(secs);
        self
    }

    /// Builder-style: set the read-path circuit-breaker thresholds.
    pub fn with_breaker(mut self, breaker: crate::breaker::BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Builder-style: set the journal checkpoint and snapshot cadence
    /// (in queries).
    pub fn with_journal_cadence(
        mut self,
        checkpoint_every: LogicalTime,
        snapshot_every: LogicalTime,
    ) -> Self {
        self.journal_checkpoint_every = checkpoint_every;
        self.journal_snapshot_every = snapshot_every;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_deepsea() {
        let c = DeepSeaConfig::default();
        assert_eq!(c.smax, None);
        assert!(c.partition_policy.partitions());
        assert!(c.partition_policy.repartitions());
        assert!(c.partition_policy.overlapping());
        assert_eq!(c.value_model, ValueModel::DeepSea { use_mle: true });
        assert!(c.phi_max_fraction.is_none());
    }

    #[test]
    fn builders_compose() {
        let retry = RetryPolicy {
            max_retries: 5,
            base_backoff_secs: 0.1,
            backoff_multiplier: 3.0,
            max_total_backoff_secs: 120.0,
        };
        let c = DeepSeaConfig::default()
            .with_smax(1_000)
            .with_tmax(77)
            .with_phi(0.25)
            .with_min_fragment_bytes(64)
            .with_value_model(ValueModel::Nectar)
            .with_policy(PartitionPolicy::NoPartition)
            .with_retry(retry)
            .with_journal_cadence(5, 20);
        assert_eq!(c.smax, Some(1_000));
        assert_eq!(c.tmax, 77);
        assert_eq!(c.phi_max_fraction, Some(0.25));
        assert_eq!(c.min_fragment_bytes, 64);
        assert_eq!(c.value_model, ValueModel::Nectar);
        assert_eq!(c.partition_policy, PartitionPolicy::NoPartition);
        assert_eq!(c.retry, retry);
        assert_eq!(c.journal_checkpoint_every, 5);
        assert_eq!(c.journal_snapshot_every, 20);
    }
}
