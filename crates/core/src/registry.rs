//! The view/partition statistics registry — Definition 5's `STAT`.
//!
//! Tracks every view and fragment DeepSea has ever considered, whether or not
//! it is currently materialized in the pool. The *configuration* `C` (what is
//! actually in the pool, Definition 3) is the subset with backing files.

use std::collections::{BTreeMap, HashMap};

use deepsea_engine::{LogicalPlan, Signature};
use deepsea_relation::Schema;
use deepsea_storage::FileId;

use crate::filter_tree::{FilterTree, ViewId};
use crate::fragment::{FragmentId, FragmentMeta};
use crate::interval::Interval;
use crate::stats::{LogicalTime, ViewStats};

/// The state of one partition `P(V, A)` of a view on attribute `A`.
#[derive(Debug, Clone)]
pub struct PartitionState {
    /// The partition attribute (as written in predicates).
    pub attr: String,
    /// The attribute's domain `D(A)`.
    pub domain: Interval,
    /// Every fragment tracked for this partition (materialized + candidates).
    pub fragments: Vec<FragmentMeta>,
    /// Split points gathered from query selection endpoints; the *initial*
    /// partitioning materializes the intervals between consecutive
    /// boundaries.
    pub boundaries: Vec<i64>,
    next_frag: u64,
}

impl PartitionState {
    /// A fresh partition over `domain`.
    pub fn new(attr: impl Into<String>, domain: Interval) -> Self {
        Self {
            attr: attr.into(),
            domain,
            fragments: Vec::new(),
            boundaries: Vec::new(),
            next_frag: 0,
        }
    }

    /// Materialized fragments as `(id, interval)` pairs, for Algorithm 2.
    pub fn materialized(&self) -> Vec<(FragmentId, Interval)> {
        self.fragments
            .iter()
            .filter(|f| f.is_materialized())
            .map(|f| (f.id, f.interval))
            .collect()
    }

    /// Is any fragment of this partition materialized?
    pub fn any_materialized(&self) -> bool {
        self.fragments.iter().any(FragmentMeta::is_materialized)
    }

    /// Intervals used as the base for Definition 7 candidate generation:
    /// the pool partition `P(V,A)` when materialized, otherwise the tracked
    /// candidate intervals `PSTAT(V,A)`.
    pub fn candidate_base(&self) -> Vec<Interval> {
        if self.any_materialized() {
            self.fragments
                .iter()
                .filter(|f| f.is_materialized())
                .map(|f| f.interval)
                .collect()
        } else {
            self.fragments.iter().map(|f| f.interval).collect()
        }
    }

    /// Find a tracked fragment with exactly this interval.
    pub fn find(&self, interval: &Interval) -> Option<&FragmentMeta> {
        self.fragments.iter().find(|f| f.interval == *interval)
    }

    /// Mutable lookup by interval.
    pub fn find_mut(&mut self, interval: &Interval) -> Option<&mut FragmentMeta> {
        self.fragments.iter_mut().find(|f| f.interval == *interval)
    }

    /// Mutable lookup by fragment id.
    pub fn frag_mut(&mut self, id: FragmentId) -> Option<&mut FragmentMeta> {
        self.fragments.iter_mut().find(|f| f.id == id)
    }

    /// Lookup by fragment id.
    pub fn frag(&self, id: FragmentId) -> Option<&FragmentMeta> {
        self.fragments.iter().find(|f| f.id == id)
    }

    /// Track a fragment interval (no-op if already tracked). Returns its id.
    pub fn track(&mut self, interval: Interval, est_size: u64) -> FragmentId {
        if let Some(f) = self.find(&interval) {
            return f.id;
        }
        let id = FragmentId(self.next_frag);
        self.next_frag += 1;
        self.fragments
            .push(FragmentMeta::candidate(id, interval, est_size));
        id
    }

    /// Record a split point (selection endpoint) for initial partitioning.
    /// Returns whether the point was actually recorded (in-domain and new) —
    /// the signal the driver uses to journal only effective boundaries.
    pub fn add_boundary(&mut self, p: i64) -> bool {
        if p > self.domain.lo && p <= self.domain.hi && !self.boundaries.contains(&p) {
            self.boundaries.push(p);
            self.boundaries.sort_unstable();
            return true;
        }
        false
    }

    /// The horizontal partition of the domain induced by the recorded
    /// boundaries (§6.2 — split `{D(V,A)}` at all observed endpoints).
    pub fn boundary_partition(&self) -> Vec<Interval> {
        let mut out = Vec::with_capacity(self.boundaries.len() + 1);
        let mut lo = self.domain.lo;
        for &b in &self.boundaries {
            out.push(Interval::new(lo, b - 1));
            lo = b;
        }
        out.push(Interval::new(lo, self.domain.hi));
        out
    }

    /// §7.2 size estimate for a candidate interval from the sizes of
    /// overlapping materialized fragments (assuming uniform values within
    /// each fragment); falls back to a width-proportional share of
    /// `view_size` when nothing is materialized yet.
    pub fn estimate_size(&self, interval: &Interval, view_size: u64) -> u64 {
        let mats: Vec<&FragmentMeta> = self
            .fragments
            .iter()
            .filter(|f| f.is_materialized() && f.interval.overlaps(interval))
            .collect();
        if mats.is_empty() {
            let frac = interval.width() as f64 / self.domain.width() as f64;
            return (view_size as f64 * frac).round() as u64;
        }
        mats.iter()
            .map(|f| (f.interval.overlap_fraction(interval) * f.size as f64).round() as u64)
            .sum()
    }

    /// Total pool bytes held by materialized fragments.
    pub fn pool_bytes(&self) -> u64 {
        self.fragments
            .iter()
            .filter(|f| f.is_materialized())
            .map(|f| f.size)
            .sum()
    }
}

/// One view tracked by the registry.
#[derive(Debug, Clone)]
pub struct ViewMeta {
    /// Identifier.
    pub id: ViewId,
    /// Short display name (`V0`, `V1`, …).
    pub name: String,
    /// Canonical signature key (view identity).
    pub key: String,
    /// The view's defining plan (view-free).
    pub plan: LogicalPlan,
    /// The defining plan's signature.
    pub sig: Signature,
    /// Output schema, known after first materialization.
    pub schema: Option<Schema>,
    /// Backing file when materialized *without* partitioning.
    pub whole_file: Option<FileId>,
    /// Partitions by attribute (multiple allowed on different attributes).
    pub partitions: BTreeMap<String, PartitionState>,
    /// `(S, COST, T, B)` statistics. `stats.cost` is the *recreation* cost
    /// (recompute the view's query and partition it, §7.1) used in `Φ` and
    /// fragment benefits.
    pub stats: ViewStats,
    /// The marginal overhead of materializing the view during a query that
    /// computes it anyway (write + partition). The §7.2 admission filter
    /// compares this against the accumulated benefit.
    pub creation_overhead: f64,
    /// When set, the view was quarantined at this logical time after a
    /// permanent I/O failure: its fragments are marked lost, its signature is
    /// out of the filter tree, and it stops matching until a later query
    /// re-registers the same shape (re-admission). Statistics survive
    /// quarantine so a hot view re-materializes quickly.
    pub quarantined_at: Option<LogicalTime>,
}

impl ViewMeta {
    /// Is anything of this view materialized?
    pub fn is_materialized(&self) -> bool {
        self.whole_file.is_some()
            || self
                .partitions
                .values()
                .any(PartitionState::any_materialized)
    }

    /// Is this view currently quarantined (lost and unmatched)?
    pub fn is_quarantined(&self) -> bool {
        self.quarantined_at.is_some()
    }

    /// Pool bytes currently held by this view (whole file + fragments).
    pub fn pool_bytes(&self) -> u64 {
        let whole = if self.whole_file.is_some() {
            self.stats.size
        } else {
            0
        };
        whole
            + self
                .partitions
                .values()
                .map(PartitionState::pool_bytes)
                .sum::<u64>()
    }
}

/// What a quarantine released: the backing files (for the caller to drop
/// from the file system), the pool bytes freed, and the fragment count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Backing files the view held (whole-file copy and fragments).
    pub files: Vec<FileId>,
    /// Pool bytes the view accounted for before the quarantine.
    pub bytes: u64,
    /// Materialized fragments marked lost.
    pub fragments: u32,
}

/// The statistics registry `STAT = (VSTAT, PSTAT, Σ)` of Definition 5.
#[derive(Debug, Default, Clone)]
pub struct ViewRegistry {
    views: Vec<ViewMeta>,
    // deepsea-lint: allow(hash_iter) -- by_key is a point-lookup index (get/insert
    // only, never iterated), so hash ordering cannot leak into any decision.
    by_key: HashMap<String, ViewId>,
    index: FilterTree,
}

impl ViewRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if no views are tracked.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Register a view candidate if its key is new. Returns its id either
    /// way. Re-registering a quarantined view's shape **re-admits** it: the
    /// signature re-enters the filter tree (with statistics intact) so the
    /// view can match, be selected, and be re-materialized by later queries.
    pub fn register(
        &mut self,
        plan: LogicalPlan,
        sig: Signature,
        est_size: u64,
        est_recreate_cost: f64,
        est_overhead: f64,
    ) -> ViewId {
        let key = sig.canonical_key();
        if let Some(&id) = self.by_key.get(&key) {
            let view = &mut self.views[id.0 as usize];
            if view.quarantined_at.take().is_some() {
                self.index.insert(&view.sig, id);
            }
            return id;
        }
        let id = ViewId(self.views.len() as u64);
        self.index.insert(&sig, id);
        self.by_key.insert(key.clone(), id);
        self.views.push(ViewMeta {
            id,
            name: format!("V{}", id.0),
            key,
            plan,
            sig,
            schema: None,
            whole_file: None,
            partitions: BTreeMap::new(),
            stats: ViewStats::estimated(est_size, est_recreate_cost),
            creation_overhead: est_overhead,
            quarantined_at: None,
        });
        id
    }

    /// Quarantine a view after a permanent I/O failure: mark every fragment
    /// and the whole-file copy as lost (releasing their pool bytes), and
    /// strip the signature from the filter tree so the view stops matching.
    /// Statistics are preserved for re-admission. Returns the backing files
    /// the caller must drop from the file system and the pool bytes released.
    pub fn quarantine(&mut self, id: ViewId, tnow: LogicalTime) -> QuarantineReport {
        let view = &mut self.views[id.0 as usize];
        let bytes = view.pool_bytes();
        let mut files = Vec::new();
        let mut fragments = 0u32;
        if let Some(f) = view.whole_file.take() {
            files.push(f);
        }
        for ps in view.partitions.values_mut() {
            for frag in &mut ps.fragments {
                if let Some(f) = frag.file.take() {
                    files.push(f);
                    fragments += 1;
                }
            }
        }
        if view.quarantined_at.is_none() {
            view.quarantined_at = Some(tnow);
            let sig = view.sig.clone();
            self.index.remove(&sig, id);
        }
        QuarantineReport {
            files,
            bytes,
            fragments,
        }
    }

    /// The view whose whole-file copy or fragment is backed by `file`, if
    /// any — how an execution failure on a file maps back to a view.
    pub fn view_owning_file(&self, file: FileId) -> Option<ViewId> {
        self.views
            .iter()
            .find(|v| {
                v.whole_file == Some(file)
                    || v.partitions
                        .values()
                        .any(|ps| ps.fragments.iter().any(|f| f.file == Some(file)))
            })
            .map(|v| v.id)
    }

    /// Lookup by id.
    pub fn view(&self, id: ViewId) -> &ViewMeta {
        &self.views[id.0 as usize]
    }

    /// Mutable lookup by id.
    pub fn view_mut(&mut self, id: ViewId) -> &mut ViewMeta {
        &mut self.views[id.0 as usize]
    }

    /// Lookup by canonical key.
    pub fn by_key(&self, key: &str) -> Option<ViewId> {
        self.by_key.get(key).copied()
    }

    /// Lookup by display name (`V3`).
    pub fn by_name(&self, name: &str) -> Option<ViewId> {
        self.views.iter().find(|v| v.name == name).map(|v| v.id)
    }

    /// Views whose signature bucket matches the query's (filter-tree pruned).
    pub fn lookup_bucket(&self, query_sig: &Signature) -> &[ViewId] {
        self.index.lookup(query_sig)
    }

    /// All views.
    pub fn iter(&self) -> impl Iterator<Item = &ViewMeta> {
        self.views.iter()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut ViewMeta> {
        self.views.iter_mut()
    }

    /// Total pool bytes across all materialized views/fragments.
    pub fn pool_bytes(&self) -> u64 {
        self.views.iter().map(ViewMeta::pool_bytes).sum()
    }

    /// A deterministic digest of the full registry state (views in id order,
    /// every field via `Debug`), used to assert that crash recovery is
    /// idempotent: recover twice, get the same digest. Per-view formatting
    /// keeps the digest independent of `HashMap` iteration order in the
    /// key index. This is the same property the D1 `hash_iter` lint enforces
    /// statically across the decision path: hash collections are never
    /// iterated where the order could reach a planning decision or an
    /// on-disk artifact — `by_key` above carries the one audited exemption.
    pub fn state_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for view in &self.views {
            eat(format!("{view:?}").as_bytes());
            eat(&[0xff]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_engine::LogicalPlan;

    fn reg_with_join() -> (ViewRegistry, ViewId) {
        let mut r = ViewRegistry::new();
        let plan = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let sig = Signature::of(&plan).unwrap();
        let id = r.register(plan, sig, 1000, 10.0, 2.0);
        (r, id)
    }

    #[test]
    fn register_dedupes_by_key() {
        let (mut r, id) = reg_with_join();
        let plan = LogicalPlan::scan("b").join(LogicalPlan::scan("a"), vec![("b.k", "a.k")]);
        let sig = Signature::of(&plan).unwrap();
        let id2 = r.register(plan, sig, 500, 5.0, 1.0);
        assert_eq!(id, id2, "join order does not create a new view");
        assert_eq!(r.len(), 1);
        // Original estimates preserved.
        assert_eq!(r.view(id).stats.size, 1000);
    }

    #[test]
    fn bucket_lookup_finds_view() {
        let (r, id) = reg_with_join();
        let q = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let qsig = Signature::of(&q).unwrap();
        assert_eq!(r.lookup_bucket(&qsig), &[id]);
    }

    #[test]
    fn partition_boundaries_induce_partition() {
        let mut p = PartitionState::new("a.k", Interval::new(0, 99));
        assert_eq!(p.boundary_partition(), vec![Interval::new(0, 99)]);
        p.add_boundary(40);
        p.add_boundary(61);
        p.add_boundary(40); // dup ignored
        p.add_boundary(0); // at domain.lo ignored (no-op split)
        p.add_boundary(1000); // outside domain ignored
        let parts = p.boundary_partition();
        assert_eq!(
            parts,
            vec![
                Interval::new(0, 39),
                Interval::new(40, 60),
                Interval::new(61, 99)
            ]
        );
        assert!(crate::interval::is_horizontal_partition(&parts, &p.domain));
    }

    #[test]
    fn track_dedupes_and_assigns_ids() {
        let mut p = PartitionState::new("a.k", Interval::new(0, 99));
        let f1 = p.track(Interval::new(0, 49), 10);
        let f2 = p.track(Interval::new(50, 99), 10);
        let f1b = p.track(Interval::new(0, 49), 99);
        assert_eq!(f1, f1b);
        assert_ne!(f1, f2);
        assert_eq!(p.fragments.len(), 2);
        assert_eq!(p.find(&Interval::new(0, 49)).unwrap().size, 10);
    }

    #[test]
    fn estimate_size_width_proportional_when_empty() {
        let p = PartitionState::new("a.k", Interval::new(0, 99));
        let s = p.estimate_size(&Interval::new(0, 49), 1000);
        assert_eq!(s, 500);
    }

    #[test]
    fn estimate_size_uses_materialized_overlap() {
        let mut p = PartitionState::new("a.k", Interval::new(0, 99));
        let f = p.track(Interval::new(0, 49), 0);
        {
            let m = p.frag_mut(f).unwrap();
            m.file = Some(FileId(1));
            m.size = 800; // skewed: the left half holds most data
        }
        let f2 = p.track(Interval::new(50, 99), 0);
        {
            let m = p.frag_mut(f2).unwrap();
            m.file = Some(FileId(2));
            m.size = 200;
        }
        // Candidate [0,24] = half of the left fragment → 400.
        assert_eq!(p.estimate_size(&Interval::new(0, 24), 1000), 400);
        // Candidate [25,74] = half of left + half of right → 400 + 100.
        assert_eq!(p.estimate_size(&Interval::new(25, 74), 1000), 500);
        assert_eq!(p.pool_bytes(), 1000);
    }

    #[test]
    fn view_pool_bytes_counts_whole_and_fragments() {
        let (mut r, id) = reg_with_join();
        assert_eq!(r.pool_bytes(), 0);
        assert!(!r.view(id).is_materialized());
        r.view_mut(id).whole_file = Some(FileId(7));
        assert!(r.view(id).is_materialized());
        assert_eq!(r.pool_bytes(), 1000, "whole file counts at stats.size");
    }

    #[test]
    fn quarantine_releases_pool_and_stops_matching() {
        let (mut r, id) = reg_with_join();
        r.view_mut(id).whole_file = Some(FileId(7));
        let ps = PartitionState::new("a.k", Interval::new(0, 99));
        r.view_mut(id).partitions.insert("a.k".into(), ps);
        let fid = {
            let ps = r.view_mut(id).partitions.get_mut("a.k").unwrap();
            let fid = ps.track(Interval::new(0, 49), 0);
            let f = ps.frag_mut(fid).unwrap();
            f.file = Some(FileId(8));
            f.size = 300;
            fid
        };
        assert_eq!(r.pool_bytes(), 1300);
        let q = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let qsig = Signature::of(&q).unwrap();
        assert_eq!(r.lookup_bucket(&qsig), &[id]);

        let report = r.quarantine(id, 42);
        assert_eq!(report.bytes, 1300);
        assert_eq!(report.files, vec![FileId(7), FileId(8)]);
        assert_eq!(report.fragments, 1);
        assert!(r.view(id).is_quarantined());
        assert!(!r.view(id).is_materialized());
        assert_eq!(r.pool_bytes(), 0, "quarantine releases pool accounting");
        assert!(r.lookup_bucket(&qsig).is_empty(), "stripped from the tree");
        assert_eq!(r.view_owning_file(FileId(8)), None, "fragment marked lost");
        // Idempotent: a second quarantine releases nothing further.
        let again = r.quarantine(id, 43);
        assert_eq!(again, QuarantineReport::default());
        assert_eq!(r.view(id).quarantined_at, Some(42));
        // Fragment metadata (intervals, stats) survives for re-admission.
        assert!(r
            .view(id)
            .partitions
            .get("a.k")
            .and_then(|ps| ps.frag(fid))
            .is_some());
    }

    #[test]
    fn reregistering_readmits_quarantined_view() {
        let (mut r, id) = reg_with_join();
        r.view_mut(id).whole_file = Some(FileId(7));
        r.quarantine(id, 5);
        let q = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let qsig = Signature::of(&q).unwrap();
        assert!(r.lookup_bucket(&qsig).is_empty());
        // A later query registering the same shape re-admits the view.
        let id2 = r.register(q.clone(), qsig.clone(), 500, 5.0, 1.0);
        assert_eq!(id, id2, "same key, same view");
        assert!(!r.view(id).is_quarantined());
        assert_eq!(r.lookup_bucket(&qsig), &[id], "back in the filter tree");
        assert_eq!(r.view(id).stats.size, 1000, "statistics survived");
        assert!(
            !r.view(id).is_materialized(),
            "data stays lost until rebuilt"
        );
    }

    #[test]
    fn quarantined_stats_survive_journal_roundtrip() {
        use crate::durability::{replay_catalog, CatalogJournal, CatalogRecord, CatalogSnapshot};

        // A view accrues real (measured) statistics, then gets quarantined.
        let (mut r, id) = reg_with_join();
        r.view_mut(id).whole_file = Some(FileId(7));
        r.view_mut(id).stats.set_measured(1200, 9.0);
        r.view_mut(id).stats.record_use(3, 25.0);
        r.quarantine(id, 4);

        // Snapshot the quarantined state, then journal a re-admission (a
        // later query registering the same shape) before the crash.
        let j: CatalogJournal = CatalogJournal::new();
        j.install_snapshot(CatalogSnapshot {
            registry: r.clone(),
            clock: 4,
        });
        let v = r.view(id);
        j.append(CatalogRecord::ViewRegistered {
            plan: v.plan.clone(),
            sig: v.sig.clone(),
            est_size: 500,
            est_cost: 5.0,
            est_overhead: 1.0,
            first_use: None,
        })
        .unwrap();

        // Cold-start replay: the view is re-admitted, its measured stats are
        // intact (so Φ-ranking can re-materialize it quickly), and its data
        // is still gone until rebuilt.
        let (snap, records) = j.replay();
        let (rec, _) = replay_catalog(snap.map(|(_, s)| s), &records);
        let rid = rec.by_key(&r.view(id).key).expect("view survives");
        let rv = rec.view(rid);
        assert!(!rv.is_quarantined(), "re-admission record replayed");
        assert!(rv.stats.measured, "measured stats survive the round-trip");
        assert_eq!(rv.stats.size, 1200, "estimates do not clobber stats");
        assert_eq!(rv.stats.events.len(), 1, "benefit history survives");
        assert!(!rv.is_materialized(), "data stays lost until rebuilt");
        let qsig = Signature::of(&rv.plan).unwrap();
        assert_eq!(
            rec.lookup_bucket(&qsig),
            &[rid],
            "back in the filter tree, eligible for re-materialization"
        );
        // Replay is idempotent.
        let (snap2, records2) = j.replay();
        let (rec2, _) = replay_catalog(snap2.map(|(_, s)| s), &records2);
        assert_eq!(rec.state_digest(), rec2.state_digest());
    }

    #[test]
    fn view_owning_file_maps_failures_to_views() {
        let (mut r, id) = reg_with_join();
        r.view_mut(id).whole_file = Some(FileId(7));
        assert_eq!(r.view_owning_file(FileId(7)), Some(id));
        assert_eq!(r.view_owning_file(FileId(9)), None);
    }
}
