//! Eviction: apply the evictions selection planned (stage 5), enforce the
//! pool limit after materialization (stage 7 — actual sizes can exceed the
//! estimates selection used), and the §11 fragment-merging maintenance pass.

use deepsea_engine::exec::ExecError;
use deepsea_obs::{DecisionEvent, PhiBreakdown};
use deepsea_relation::Table;
use deepsea_storage::FileId;

use crate::durability::CatalogRecord;
use crate::filter_tree::ViewId;
use crate::selection::{CandidateKind, RankedItem};
use crate::stats::{decay, LogicalTime};

use super::super::context::{CreationCharge, QueryContext};
use super::super::DeepSea;

impl DeepSea {
    /// Apply the evictions the selection stage planned.
    pub(crate) fn stage_apply_evictions(&mut self, ctx: &mut QueryContext) {
        let to_evict = ctx.selection.to_evict.clone();
        // Audit context: the weakest item *kept* is the runner-up victim had
        // selection pressure been one notch higher. Computed only when the
        // audit log listens — it feeds no decision.
        let runner_up = if self.obs.events_enabled() {
            ctx.selection
                .to_keep
                .iter()
                .filter(|i| i.materialized)
                .min_by(|a, b| a.phi.total_cmp(&b.phi))
                .map(|i| (self.describe_item(&i.kind), i.phi))
        } else {
            None
        };
        for item in &to_evict {
            let breakdown = self
                .obs
                .events_enabled()
                .then(|| self.phi_breakdown(&item.kind, item.phi, ctx.tnow));
            if let Some((desc, delete_secs)) = self.evict(&item.kind) {
                ctx.trace.eviction.delete_secs += delete_secs;
                if let Some(breakdown) = breakdown {
                    self.obs.event(
                        ctx.tnow,
                        DecisionEvent::Eviction {
                            victim: desc.clone(),
                            breakdown,
                            runner_up: runner_up.as_ref().map(|(d, _)| d.clone()),
                            runner_up_phi: runner_up.as_ref().map(|&(_, phi)| phi),
                            forced: false,
                        },
                    );
                }
                ctx.evicted.push(desc);
            }
        }
        ctx.trace.eviction.selected = ctx.evicted.len() as u32;
    }

    /// Human-readable description of a candidate item (`V3` or
    /// `V3.item.k[0, 99]`), matching the strings `evict` returns.
    pub(crate) fn describe_item(&self, kind: &CandidateKind) -> String {
        match kind {
            CandidateKind::WholeView(vid) => self.registry.view(*vid).name.clone(),
            CandidateKind::Fragment(vid, attr, fid) => {
                let view = self.registry.view(*vid);
                match view.partitions.get(attr).and_then(|ps| ps.frag(*fid)) {
                    Some(frag) => format!("{}.{attr}{}", view.name, frag.interval),
                    None => format!("{}.{attr}?", view.name),
                }
            }
        }
    }

    /// Reconstruct the Φ = COST·B/S breakdown behind a ranked item's value,
    /// for the audit log. `phi` is the policy's actual ranking value and is
    /// carried through verbatim; the components are recomputed from the same
    /// statistics the policy read, so `tests` can assert they agree.
    pub(crate) fn phi_breakdown(
        &self,
        kind: &CandidateKind,
        phi: f64,
        tnow: LogicalTime,
    ) -> PhiBreakdown {
        let tmax = self.config.tmax;
        let vm = self.config.value_model;
        match kind {
            CandidateKind::WholeView(vid) => {
                let stats = &self.registry.view(*vid).stats;
                PhiBreakdown {
                    phi,
                    cost: stats.cost,
                    benefit: vm.view_benefit(stats, tnow, tmax),
                    benefit_raw: stats.undecayed_benefit(),
                    ha_hits: stats.events.iter().map(|e| decay(tnow, e.t, tmax)).sum(),
                    raw_hits: stats.events.len() as u64,
                    size: stats.size,
                }
            }
            CandidateKind::Fragment(vid, attr, fid) => {
                let view = self.registry.view(*vid);
                let (cost, view_size) = (view.stats.cost, view.stats.size);
                let Some((ps, idx)) = view.partitions.get(attr).and_then(|ps| {
                    ps.fragments
                        .iter()
                        .position(|f| f.id == *fid)
                        .map(|idx| (ps, idx))
                }) else {
                    return PhiBreakdown {
                        phi,
                        cost,
                        benefit: 0.0,
                        benefit_raw: 0.0,
                        ha_hits: 0.0,
                        raw_hits: 0,
                        size: 0,
                    };
                };
                let frag = &ps.fragments[idx];
                let ha = vm.fragment_adjusted_hits(ps, tnow, tmax)[idx];
                let share = if view_size == 0 {
                    0.0
                } else {
                    frag.size as f64 / view_size as f64
                };
                PhiBreakdown {
                    phi,
                    cost,
                    benefit: share * cost * ha,
                    benefit_raw: share * cost * frag.stats.raw_hits() as f64,
                    ha_hits: ha,
                    raw_hits: frag.stats.raw_hits() as u64,
                    size: frag.size,
                }
            }
        }
    }

    /// Stage 7: evict lowest-value items until the pool fits `Smax` again.
    pub(crate) fn stage_enforce_limit(&mut self, ctx: &mut QueryContext) {
        let (forced, delete_secs) = self.enforce_limit(ctx.tnow);
        ctx.trace.eviction.limit_forced = forced.len() as u32;
        ctx.trace.eviction.delete_secs += delete_secs;
        ctx.evicted.extend(forced);
    }

    /// Evict one item, returning its description and the simulated seconds
    /// the file delete cost (flows into `EvictionTrace::delete_secs`).
    fn evict(&mut self, kind: &CandidateKind) -> Option<(String, f64)> {
        match kind {
            CandidateKind::WholeView(vid) => {
                let view = self.registry.view_mut(*vid);
                let file = view.whole_file.take()?;
                let size = view.stats.size;
                let key = view.key.clone();
                let name = view.name.clone();
                let secs = self.fs.delete_costed(file).map_or(0.0, |(_, s)| s);
                let _ = self.pool.release(size);
                self.journal_emit(CatalogRecord::ViewEvicted { view: key });
                Some((name, secs))
            }
            CandidateKind::Fragment(vid, attr, fid) => {
                let view = self.registry.view_mut(*vid);
                let name = view.name.clone();
                let key = view.key.clone();
                let ps = view.partitions.get_mut(attr)?;
                let frag = ps.frag_mut(*fid)?;
                let file = frag.file.take()?;
                let iv = frag.interval;
                let size = frag.size;
                let secs = self.fs.delete_costed(file).map_or(0.0, |(_, s)| s);
                let _ = self.pool.release(size);
                self.journal_emit(CatalogRecord::FragmentEvicted {
                    view: key,
                    attr: attr.clone(),
                    interval: iv,
                });
                Some((format!("{name}.{attr}{iv}"), secs))
            }
        }
    }

    /// Evict lowest-value items until the pool fits `Smax` (actual
    /// materialized sizes can exceed the estimates selection planned with).
    /// Returns the victims and the simulated delete seconds charged.
    fn enforce_limit(&mut self, tnow: LogicalTime) -> (Vec<String>, f64) {
        let Some(smax) = self.config.smax else {
            return (Vec::new(), 0.0);
        };
        let mut delete_secs = 0.0;
        let mut evicted = Vec::new();
        while self.pool_bytes() > smax {
            let items: Vec<RankedItem> = self
                .build_allcand(&[], tnow)
                .into_iter()
                .filter(|i| i.materialized)
                .collect();
            let Some(worst) = items.iter().min_by(|a, b| a.phi.total_cmp(&b.phi)).cloned() else {
                break;
            };
            // Audit context only — the victim choice above is untouched.
            let audit = if self.obs.events_enabled() {
                let runner_up = items
                    .iter()
                    .filter(|i| i.kind != worst.kind)
                    .min_by(|a, b| a.phi.total_cmp(&b.phi))
                    .map(|i| (self.describe_item(&i.kind), i.phi));
                Some((self.phi_breakdown(&worst.kind, worst.phi, tnow), runner_up))
            } else {
                None
            };
            match self.evict(&worst.kind) {
                Some((d, secs)) => {
                    delete_secs += secs;
                    if let Some((breakdown, runner_up)) = audit {
                        self.obs.event(
                            tnow,
                            DecisionEvent::Eviction {
                                victim: d.clone(),
                                breakdown,
                                runner_up: runner_up.as_ref().map(|(desc, _)| desc.clone()),
                                runner_up_phi: runner_up.as_ref().map(|&(_, phi)| phi),
                                forced: true,
                            },
                        );
                    }
                    evicted.push(d)
                }
                None => break,
            }
        }
        (evicted, delete_secs)
    }

    /// Maintenance pass implementing the §11 extension: merge consecutive
    /// materialized fragments that are (almost) always accessed together.
    /// Reads both halves, writes the union, drops the originals; returns the
    /// simulated seconds spent and the merges performed.
    pub fn merge_cohit_fragments(
        &mut self,
        cohit_tolerance: f64,
        max_merged_fraction: f64,
    ) -> Result<(f64, Vec<String>), ExecError> {
        let tnow = self.clock.max(1);
        let tmax = self.config.tmax;
        let block = self.fs.block_config().block_bytes;
        // Collect the work before mutating (borrow discipline).
        let mut work: Vec<(ViewId, String, crate::merging::MergeCandidate)> = Vec::new();
        for view in self.registry.iter() {
            let cap = (view.stats.size as f64 * max_merged_fraction) as u64;
            for ps in view.partitions.values() {
                for cand in crate::merging::merge_candidates(ps, tnow, tmax, cohit_tolerance, cap) {
                    work.push((view.id, ps.attr.clone(), cand));
                }
            }
        }
        let mut secs = 0.0;
        let mut merged = Vec::new();
        for (vid, attr, cand) in work {
            let (name, schema, files_sizes) = {
                let view = self.registry.view(vid);
                let Some(schema) = view.schema.clone() else {
                    continue;
                };
                let ps = view
                    .partitions
                    .get(&attr)
                    .expect("invariant: candidates come from existing partitions");
                let pair: Vec<(FileId, u64)> = [cand.left, cand.right]
                    .iter()
                    .filter_map(|id| ps.frag(*id))
                    .filter_map(|f| f.file.map(|file| (file, f.size)))
                    .collect();
                if pair.len() != 2 {
                    continue; // one half was evicted since planning
                }
                (view.name.clone(), schema, pair)
            };
            // Read both halves before writing anything: a fragment lost
            // mid-merge must never produce a partial union. On a permanent
            // loss (or exhausted retries) the view is quarantined and the
            // merge skipped; the wasted backoff is still charged.
            let mut rows = Vec::new();
            let mut read_bytes = 0;
            let mut bpr = 1;
            let mut charge = CreationCharge::default();
            let mut lost = false;
            for (file, _) in &files_sizes {
                match self.read_retrying(*file, &mut charge) {
                    Ok((payload, bytes)) => {
                        read_bytes += bytes;
                        bpr = bpr.max(payload.bytes_per_row);
                        rows.extend(payload.rows.iter().cloned());
                    }
                    Err(_) => {
                        lost = true;
                        break;
                    }
                }
            }
            if lost {
                self.quarantine_view(vid, tnow);
                secs += charge.penalty_secs;
                continue;
            }
            let merged_table = Table::new(schema, rows, bpr);
            let size = merged_table.sim_bytes();
            let (new_file, new_nodes) = self.create_placed(
                format!("{name}.{attr}{}", cand.merged),
                size,
                merged_table,
                &mut charge,
                self.replicas_for(vid),
            );
            secs += self.backend.scan_secs(read_bytes, block)
                + self.backend.write_secs(size, size.div_ceil(block).max(1))
                + charge.penalty_secs;
            // Update metadata: drop the halves, track the union.
            let key = self.registry.view(vid).key.clone();
            let mut dropped: Vec<(crate::interval::Interval, u64)> = Vec::new();
            {
                let view = self.registry.view_mut(vid);
                let ps = view
                    .partitions
                    .get_mut(&attr)
                    .expect("invariant: partition existence checked above");
                let mut hits: Vec<LogicalTime> = Vec::new();
                for id in [cand.left, cand.right] {
                    if let Some(f) = ps.frag_mut(id) {
                        hits.extend(f.stats.hits.iter().copied());
                        if let Some(file) = f.file.take() {
                            secs += self.fs.delete_costed(file).map_or(0.0, |(_, s)| s);
                            dropped.push((f.interval, f.size));
                        }
                    }
                }
                hits.sort_unstable();
                let mid = ps.track(cand.merged, size);
                let f = ps.frag_mut(mid).expect("invariant: just tracked");
                f.file = Some(new_file);
                f.size = size;
                f.stats.hits = hits;
            }
            for (interval, bytes) in dropped {
                let _ = self.pool.release(bytes);
                self.journal_emit(CatalogRecord::FragmentEvicted {
                    view: key.clone(),
                    attr: attr.clone(),
                    interval,
                });
            }
            let _ = self.pool.reserve(size);
            self.journal_emit(CatalogRecord::FragmentMaterialized {
                view: key,
                attr: attr.clone(),
                interval: cand.merged,
                file: new_file,
                size,
                schema: None,
                nodes: new_nodes,
            });
            if self.obs.events_enabled() {
                self.obs.event(
                    tnow,
                    DecisionEvent::FragmentMerge {
                        view: name.clone(),
                        attr: attr.clone(),
                        merged: cand.merged.to_string(),
                        bytes: size,
                    },
                );
            }
            merged.push(format!("{name}.{attr}{}", cand.merged));
        }
        let debt = self.drain_journal_debt();
        secs += debt.penalty_secs;
        Ok((secs, merged))
    }
}
