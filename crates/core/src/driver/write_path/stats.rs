//! Stage 2 of Algorithm 1: `UPDATESTATS` — record a benefit event for every
//! view/fragment that could have answered the query, "no matter whether the
//! view or fragment is currently in the pool or not" (§8.4).
//!
//! This is a catalog **mutation** (it rewrites view and fragment statistics
//! in place), so it lives on the write path even though the paper folds it
//! into the matching stage: concurrent snapshot readers must never update
//! stats directly — their matches are replayed here when their query's
//! commit ticket comes up.

use deepsea_engine::plan::LogicalPlan;
use deepsea_engine::signature::Signature;

use crate::candidates::clamp_to_domain;
use crate::filter_tree::ViewId;
use crate::interval::Interval;

use super::super::context::QueryContext;
use super::super::DeepSea;

impl DeepSea {
    /// Stage 2 — `UPDATESTATS`: record benefit events for matched views and
    /// hits for overlapped fragments.
    pub(crate) fn stage_update_stats(&mut self, plan: &LogicalPlan, ctx: &mut QueryContext) {
        let block = self.fs.block_config().block_bytes;
        let tnow = ctx.tnow;
        // Pre-compute (view, saving, needed-range) outside the mutable loop;
        // several subqueries can match the same view — keep the hit with the
        // largest saving (the most specific, e.g. the one carrying the range
        // selection).
        let mut updates: std::collections::BTreeMap<ViewId, (f64, Vec<(String, Interval)>)> =
            std::collections::BTreeMap::new();
        for hit in &ctx.hits {
            let view = self.registry.view(hit.view);
            let scan_bytes = match &hit.access {
                Some(a) => a.bytes,
                // Not materialized yet: COST(Q/V) anticipates *partitioned*
                // access — a future query only reads the fragments its range
                // needs (this is the whole point of partitioned views).
                None => {
                    let mut bytes = view.stats.size;
                    if self.config.partition_policy.partitions() {
                        let frac = self.read_view().comp_range_fraction(view, &hit.comp);
                        bytes = ((bytes as f64 * frac) as u64).max(1);
                    }
                    bytes
                }
            };
            let saving = (hit.sub_cost - self.backend.scan_secs(scan_bytes, block)).max(0.0);
            // Which fragments were (or would have been) hit, per partition.
            let sub = deepsea_engine::subquery::subplan_at(plan, &hit.path);
            let qsig = sub.and_then(Signature::of);
            let mut ranges = Vec::new();
            for ps in view.partitions.values() {
                let needed = qsig
                    .as_ref()
                    .and_then(|s| s.range_on_attr(&ps.attr))
                    .and_then(|r| clamp_to_domain(r, &ps.domain))
                    .unwrap_or(ps.domain);
                ranges.push((ps.attr.clone(), needed));
            }
            match updates.get_mut(&hit.view) {
                Some(prev) if prev.0 >= saving => {}
                slot => {
                    let update = (saving, ranges);
                    match slot {
                        Some(prev) => *prev = update,
                        None => {
                            updates.insert(hit.view, update);
                        }
                    }
                }
            }
        }
        ctx.trace.matching.views_updated = updates.len() as u32;
        for (vid, (saving, ranges)) in updates {
            let tmax = self.config.tmax;
            let view = self.registry.view_mut(vid);
            view.stats.record_use(tnow, saving);
            view.stats.prune(tnow, tmax);
            for (attr, needed) in ranges {
                if let Some(ps) = view.partitions.get_mut(&attr) {
                    for frag in &mut ps.fragments {
                        if frag.interval.overlaps(&needed) {
                            frag.stats.record_hit(tnow);
                            frag.stats.prune(tnow, tmax);
                        }
                    }
                }
            }
        }
    }
}
