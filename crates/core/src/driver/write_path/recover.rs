//! Fault recovery: retrying fragment I/O under the configured
//! [`RetryPolicy`](deepsea_engine::RetryPolicy) and quarantining views whose
//! backing data is permanently lost.
//!
//! The contract that makes all of this safe is the paper's framing of views
//! as *opportunistic accelerators*: base tables are durable and can always
//! answer the query, so the worst a lost fragment can cost is time — never
//! correctness. Quarantine therefore only has to (a) release the lost data
//! from pool accounting, (b) stop the view from matching until it is rebuilt,
//! and (c) leave statistics intact so a hot view earns re-materialization
//! quickly once a later query re-registers its shape.

use std::collections::BTreeSet;
use std::sync::Arc;

use deepsea_relation::Table;
use deepsea_storage::{placement_key, FileId, IoError};

use crate::durability::{CatalogRecord, FsckReport};
use crate::filter_tree::ViewId;
use crate::registry::QuarantineReport;
use crate::stats::LogicalTime;

use super::super::context::{CreationCharge, QueryContext};
use super::super::DeepSea;

impl DeepSea {
    /// Read a fragment file, retrying transient failures under
    /// `config.retry`. Retry counts and backoff/spike seconds accumulate
    /// into `charge` (including the wasted backoff of a failed read, so the
    /// caller's recovery path is priced honestly). A permanent loss or an
    /// exhausted budget returns the error.
    pub(crate) fn read_retrying(
        &self,
        file: FileId,
        charge: &mut CreationCharge,
    ) -> Result<(Arc<Table>, u64), IoError> {
        let policy = self.config.retry;
        let mut attempts = 0u32;
        loop {
            match self.fs.try_read(file) {
                Ok(out) => {
                    charge.retries += attempts;
                    charge.penalty_secs += out.spike_secs;
                    return Ok((out.value, out.sim_bytes));
                }
                Err(e) if e.is_transient() && attempts < policy.max_retries => {
                    charge.penalty_secs += policy.backoff_secs(attempts);
                    attempts += 1;
                }
                Err(e) => {
                    charge.retries += attempts;
                    return Err(e);
                }
            }
        }
    }

    /// Create a file, retrying transient write failures under
    /// `config.retry`. Writes never lose data: the payload is in memory, so
    /// once the budget is exhausted the write is forced through the
    /// infallible path (modelling re-routing to healthy datanodes).
    pub(crate) fn create_retrying(
        &self,
        name: String,
        sim_bytes: u64,
        payload: Table,
        charge: &mut CreationCharge,
    ) -> FileId {
        let policy = self.config.retry;
        let mut attempts = 0u32;
        loop {
            match self.fs.try_create(name.clone(), sim_bytes, payload.clone()) {
                Ok(out) => {
                    charge.retries += attempts;
                    charge.penalty_secs += out.spike_secs;
                    return out.value;
                }
                Err(IoError::TransientWrite) if attempts < policy.max_retries => {
                    charge.penalty_secs += policy.backoff_secs(attempts);
                    attempts += 1;
                }
                Err(_) => {
                    charge.retries += attempts;
                    let (id, _) = self.fs.create(name, sim_bytes, payload);
                    return id;
                }
            }
        }
    }

    /// The replication factor a new file of view `vid` should be placed at:
    /// `hot_replication` once the view's recorded benefit events cross the
    /// cluster's heat threshold, else the base factor. 1 without a cluster.
    /// Heat is read from statistics updated *before* execution, so a faulted
    /// and a zero-fault run of the same workload place identically.
    pub(crate) fn replicas_for(&self, vid: ViewId) -> u32 {
        match self.fs.cluster() {
            Some(cluster) => {
                let cfg = cluster.config();
                if self.registry.view(vid).stats.events.len() as u64 >= cfg.hot_threshold {
                    cfg.hot_replication
                } else {
                    cfg.replication
                }
            }
            None => 1,
        }
    }

    /// [`DeepSea::create_retrying`] with cluster placement: the file is
    /// assigned `replicas` datanodes by hashing its name (deterministic per
    /// view/fragment — the name encodes `(view, attr, interval)`), and the
    /// surplus replica bytes are added to `charge.write_bytes` so
    /// replication I/O is priced through the same `CostWeights` as any other
    /// write. Callers still add the base size themselves. Returns the file
    /// and its placement, empty without a cluster.
    pub(crate) fn create_placed(
        &self,
        name: String,
        sim_bytes: u64,
        payload: Table,
        charge: &mut CreationCharge,
        replicas: u32,
    ) -> (FileId, Vec<u32>) {
        let Some(cluster) = self.fs.cluster() else {
            let id = self.create_retrying(name, sim_bytes, payload, charge);
            return (id, Vec::new());
        };
        let nodes = cluster.placement_for(placement_key(name.as_bytes()), replicas);
        let policy = self.config.retry;
        let mut attempts = 0u32;
        let id = loop {
            match self
                .fs
                .try_create_placed(name.clone(), sim_bytes, payload.clone(), &nodes)
            {
                Ok(out) => {
                    charge.retries += attempts;
                    charge.penalty_secs += out.spike_secs;
                    break out.value;
                }
                Err(IoError::TransientWrite) if attempts < policy.max_retries => {
                    charge.penalty_secs += policy.backoff_secs(attempts);
                    attempts += 1;
                }
                Err(_) => {
                    // Budget exhausted (e.g. the whole placement is down):
                    // force the write through and record the placement — the
                    // queued write lands once the nodes return.
                    charge.retries += attempts;
                    let (id, _) = self.fs.create(name, sim_bytes, payload);
                    self.fs.place(id, &nodes);
                    break id;
                }
            }
        };
        charge.write_bytes += sim_bytes * (nodes.len() as u64 - 1);
        (id, nodes.iter().map(|n| n.0).collect())
    }

    /// Quarantine a view: mark its data lost in the registry (releasing its
    /// pool bytes and stripping it from the filter tree) and drop whatever
    /// backing files still exist. Returns the view's name and the report.
    pub(crate) fn quarantine_view(
        &mut self,
        vid: ViewId,
        tnow: LogicalTime,
    ) -> (String, QuarantineReport) {
        let was_quarantined = self.registry.view(vid).is_quarantined();
        let report = self.registry.quarantine(vid, tnow);
        for file in &report.files {
            // The file that triggered the failure is usually already gone
            // from the FS; deleting the survivors is metadata-only.
            // deepsea-lint: allow(cost_flow) -- quarantine is a failure path, not a
            // costed query stage; its delete cost is charged nowhere by design.
            self.fs.delete(*file);
        }
        let _ = self.pool.release(report.bytes);
        if !was_quarantined {
            let key = self.registry.view(vid).key.clone();
            self.journal_emit(CatalogRecord::ViewQuarantined {
                view: key,
                at: tnow,
            });
            let name = self.registry.view(vid).name.clone();
            self.obs
                .counter_inc("deepsea_quarantined_views_total", Some(&name));
            if self.obs.events_enabled() {
                self.obs.event(
                    tnow,
                    deepsea_obs::DecisionEvent::Quarantine {
                        view: name,
                        files: report.files.len() as u64,
                        bytes: report.bytes,
                        fragments: report.fragments as u64,
                    },
                );
            }
        }
        (self.registry.view(vid).name.clone(), report)
    }

    /// Quarantine a view during query processing, recording the event in the
    /// query's trace. No-op if the view is already quarantined (a query can
    /// hit the same broken view from several stages).
    pub(crate) fn quarantine_into_ctx(&mut self, vid: ViewId, ctx: &mut QueryContext) {
        if self.registry.view(vid).is_quarantined() {
            return;
        }
        let (name, report) = self.quarantine_view(vid, ctx.tnow);
        ctx.trace.recovery.quarantined_views += 1;
        ctx.trace.recovery.quarantined_bytes += report.bytes;
        ctx.quarantined.push(name);
    }

    /// The post-replay **fsck sweep** of `DeepSea::recover`: reconcile the
    /// recovered catalog against the file system.
    ///
    /// The *fs-first, journal-after* commit convention bounds what a crash
    /// can tear to exactly two shapes, and fsck repairs both:
    ///
    /// 1. **Orphans** — a file was created but the crash hit before its
    ///    record was journaled. No catalog entry references it: delete it
    ///    (releasing its simulated bytes, charged at the delete weight).
    /// 2. **Dangling entries** — the journal references a file the FS no
    ///    longer has (deleted pre-crash, its eviction record lost), or one
    ///    whose checksum no longer verifies. The owning view is quarantined;
    ///    its statistics survive for re-materialization.
    ///
    /// Afterwards the pool ledger is re-derived from the reconciled catalog
    /// and the three-way invariant `pool.used == registry.pool_bytes() ==
    /// fs.total_bytes()` is asserted.
    pub(crate) fn fsck(&mut self) -> FsckReport {
        let mut report = FsckReport::default();
        let tnow = self.clock;

        // Pass 1: verify every catalog-referenced file; collect damaged views.
        let mut damaged: Vec<ViewId> = Vec::new();
        for view in self.registry.iter() {
            let mut files: Vec<FileId> = Vec::new();
            files.extend(view.whole_file);
            files.extend(
                view.partitions
                    .values()
                    .flat_map(|ps| ps.fragments.iter().filter_map(|f| f.file)),
            );
            let mut broken = false;
            for f in files {
                match self.fs.verify(f) {
                    None => {
                        report.missing_files += 1;
                        broken = true;
                    }
                    Some(false) => {
                        report.corrupt_files += 1;
                        broken = true;
                    }
                    Some(true) => {}
                }
            }
            if broken {
                damaged.push(view.id);
            }
        }
        for vid in damaged {
            let (_, q) = self.quarantine_view(vid, tnow);
            report.quarantined_views += 1;
            report.quarantined_bytes += q.bytes;
        }

        // Pass 2: delete files no live catalog entry references (orphans of
        // a crash between create and journal append, plus whatever the
        // quarantines above just unlinked from the catalog).
        let referenced: BTreeSet<FileId> = self
            .registry
            .iter()
            .flat_map(|v| {
                v.whole_file.into_iter().chain(
                    v.partitions
                        .values()
                        .flat_map(|ps| ps.fragments.iter().filter_map(|f| f.file)),
                )
            })
            .collect();
        for f in self.fs.file_ids() {
            if !referenced.contains(&f) {
                if let Some((bytes, secs)) = self.fs.delete_costed(f) {
                    report.orphan_files += 1;
                    report.orphan_bytes += bytes;
                    report.gc_secs += secs;
                }
            }
        }

        // Reconcile the pool ledger and assert the recovery invariant.
        let live = self.registry.pool_bytes();
        self.pool.set_used(live);
        report.pool_used = live;
        assert_eq!(
            live,
            self.fs.total_bytes(),
            "fsck: catalog bytes and file-system bytes disagree"
        );
        assert_eq!(self.pool.used(), live, "fsck: pool ledger disagrees");

        let debt = self.drain_journal_debt();
        report.journal_retries = debt.retries;
        report.journal_penalty_secs = debt.penalty_secs;
        report
    }
}
