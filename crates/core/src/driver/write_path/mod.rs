//! The **write side** of the driver: every stage that mutates the catalog,
//! the pool, or the journal — statistics updates, candidate registration,
//! Φ-selection, materialization, eviction, `Smax` enforcement, and the
//! durable commit point.
//!
//! All of it runs behind the single writer (`&mut DeepSea`), one query at a
//! time, in ticket order. [`DeepSea::process_query`] is the serialized
//! commit: it re-runs the read path against the writer's *live* state (so
//! the committed decision never acts on a stale snapshot), then applies the
//! chosen configuration and publishes the next catalog epoch. Concurrent
//! readers meanwhile answer queries from the last published
//! [`crate::snapshot::ReadSnapshot`]; see [`crate::server`].

pub(crate) mod candidates;
pub(crate) mod evict;
pub(crate) mod materialize;
pub(crate) mod recover;
pub(crate) mod selection;
pub(crate) mod stats;

use deepsea_engine::exec::{ExecError, ExecMetrics};
use deepsea_engine::plan::LogicalPlan;
use deepsea_obs::DecisionEvent;
use deepsea_relation::Table;
use deepsea_storage::FileId;

use crate::durability::{stats_checkpoint, CatalogRecord, CatalogSnapshot};

use super::context::QueryContext;
use super::{DeepSea, JournalDebt, QueryOutcome};

/// Upper bound on fragment-granularity re-plan rounds within one execution.
/// Each round removes at least one blocked file from consideration, so the
/// loop terminates regardless; the cap is belt-and-braces against a
/// pathological schedule downing nodes faster than re-planning drains them.
const MAX_DEGRADED_ROUNDS: u32 = 8;

impl DeepSea {
    /// Append one record to the attached journal (no-op without one).
    /// Transient journal-write failures are retried under the configured
    /// retry policy, accumulating backoff seconds into the journal debt; a
    /// record is never dropped (the final attempt forces the write). An armed
    /// simulated crash fires from inside the append and propagates as a
    /// panic — exactly the torn-state semantics the crash harness exercises.
    pub(crate) fn journal_emit(&mut self, record: CatalogRecord) {
        let Some(journal) = &self.journal else {
            return;
        };
        self.journal_debt.appends += 1;
        self.appends_since_snapshot += 1;
        let mut attempt = 0u32;
        loop {
            match journal.append(record.clone()) {
                Ok(_) => return,
                Err(_) if attempt < self.config.retry.max_retries => {
                    self.journal_debt.retries += 1;
                    self.journal_debt.penalty_secs += self.config.retry.backoff_secs(attempt);
                    attempt += 1;
                }
                Err(_) => {
                    // Out of retries: a catalog record must not be lost, so
                    // force the write (modelling a synchronous fsync path).
                    journal.append_infallible(record);
                    return;
                }
            }
        }
    }

    /// Take the journal debt accumulated since the last drain.
    pub(crate) fn drain_journal_debt(&mut self) -> JournalDebt {
        std::mem::take(&mut self.journal_debt)
    }

    /// The commit point of one processed query: record the clock advance,
    /// emit a statistics checkpoint / install a snapshot at the configured
    /// cadence, and charge the accumulated journal debt to the query.
    pub(crate) fn journal_commit(&mut self, ctx: &mut QueryContext) {
        if self.journal.is_some() {
            let tnow = ctx.tnow;
            if tnow.is_multiple_of(self.config.journal_checkpoint_every.max(1)) {
                let ckpt = stats_checkpoint(&self.registry, tnow);
                self.journal_emit(ckpt);
            }
            self.journal_emit(CatalogRecord::QueryCommitted { tnow });
            if tnow.is_multiple_of(self.config.journal_snapshot_every.max(1)) {
                if let Some(journal) = &self.journal {
                    journal.install_snapshot(CatalogSnapshot {
                        registry: self.registry.clone(),
                        clock: tnow,
                    });
                    ctx.trace.durability.snapshots += 1;
                    self.obs
                        .counter_inc("deepsea_journal_snapshots_total", None);
                    self.obs.event(
                        tnow,
                        DecisionEvent::JournalSnapshot {
                            appended_since_last: self.appends_since_snapshot,
                        },
                    );
                    self.appends_since_snapshot = 0;
                }
            }
        }
        let debt = self.drain_journal_debt();
        ctx.trace.durability.journal_appends += debt.appends;
        ctx.trace.durability.journal_retries += debt.retries;
        ctx.trace.durability.journal_penalty_secs += debt.penalty_secs;
        ctx.creation_secs += debt.penalty_secs;
        self.obs
            .counter_add("deepsea_journal_appends_total", None, debt.appends as u64);
        self.obs
            .counter_add("deepsea_journal_retries_total", None, debt.retries as u64);
    }

    /// Process one query — Algorithm 1, as a linear sequence of stages over
    /// a per-query [`QueryContext`].
    ///
    /// This is the **serialized commit**: stages 1 and 3 are pure read-path
    /// code run against the writer's live state (via
    /// [`DeepSea::read_view`]); everything else mutates the catalog and must
    /// hold the writer. Under the concurrent server this method is invoked
    /// once per ticket, in ticket order, and its committed outcome is
    /// bit-identical to the single-client serial run by construction.
    pub fn process_query(&mut self, plan: &LogicalPlan) -> Result<QueryOutcome, ExecError> {
        self.clock += 1;
        let tnow = self.clock;
        // Arm the per-query retry budget: a fresh token bucket per query,
        // shared across every operation the query performs. `None` (the
        // default) disarms it — only the per-op retry policy applies.
        self.backend
            .reset_retry_budget(self.config.retry_budget_secs);
        self.readmit_offline(tnow);

        if !self.config.partition_policy.materializes() {
            return self.run_baseline(plan);
        }

        let mut ctx = QueryContext::new(plan, tnow);
        // ── 1. COMPUTEREWRITINGS (read path, live state) ─────────────────
        self.read_view().compute_rewritings(plan, &mut ctx);
        // ── 2. UPDATESTATS for every (potential) match ───────────────────
        self.stage_update_stats(plan, &mut ctx);
        // ── 3. SELECTREWRITING (read path, live state) ───────────────────
        self.read_view().select_rewriting(plan, &mut ctx);
        // ── 4. COMPUTEVIEWCAND / ADDCANDIDATES ───────────────────────────
        self.stage_register_candidates(&mut ctx);
        // ── 5. VIEWSELECTION ─────────────────────────────────────────────
        self.stage_select_configuration(&mut ctx);
        // ── 6. INSTRUMENT + EXECUTE, apply the chosen configuration ──────
        let (result, metrics) = self.stage_execute(plan, &mut ctx)?;
        self.stage_apply_evictions(&mut ctx);
        self.stage_materialize(&mut ctx)?;
        self.stage_charge_creation(&mut ctx);
        // ── 7. Enforce Smax with measured sizes ──────────────────────────
        self.stage_enforce_limit(&mut ctx);
        // ── 8. Durable commit point ──────────────────────────────────────
        self.journal_commit(&mut ctx);

        let outcome = QueryOutcome {
            result,
            elapsed_secs: ctx.query_secs + ctx.creation_secs,
            query_secs: ctx.query_secs,
            creation_secs: ctx.creation_secs,
            used_view: ctx.used_view,
            materialized: ctx.materialized,
            evicted: ctx.evicted,
            quarantined: ctx.quarantined,
            metrics,
            trace: ctx.trace,
        };
        self.observe_query(&outcome);
        Ok(outcome)
    }

    /// The Hive baseline: no matching, no materialization — and, unlike
    /// DeepSea's instrumented plans, full predicate pushdown ("most
    /// optimizers will push down selections", §10.2).
    fn run_baseline(&mut self, plan: &LogicalPlan) -> Result<QueryOutcome, ExecError> {
        let optimized = deepsea_engine::optimize::push_down_selections(plan, &self.catalog);
        let (result, metrics) = self.backend.execute(&optimized, &self.catalog, &self.fs)?;
        let query_secs = self.backend.elapsed_secs(&metrics);
        let mut ctx = QueryContext::new(plan, self.clock);
        ctx.query_secs = query_secs;
        ctx.trace.execution.query_secs = query_secs;
        self.journal_commit(&mut ctx);
        let outcome = QueryOutcome {
            result,
            elapsed_secs: query_secs + ctx.creation_secs,
            query_secs,
            creation_secs: ctx.creation_secs,
            used_view: None,
            materialized: Vec::new(),
            evicted: Vec::new(),
            quarantined: Vec::new(),
            metrics,
            trace: ctx.trace,
        };
        self.observe_query(&outcome);
        Ok(outcome)
    }

    /// Execute the chosen plan through the backend, with graceful
    /// degradation: if a rewritten plan fails (transient retries exhausted or
    /// a fragment permanently lost), quarantine the broken view and re-answer
    /// the query from base tables within the same call. Base tables are
    /// durable in this model — views only ever accelerate, never gate, an
    /// answer.
    ///
    /// Under a sharded FS failures are first patched at **fragment
    /// granularity**: a file unreachable because every replica is on a down
    /// node is marked offline (auto re-admitted when the node returns) and a
    /// file on an all-dead placement has just its fragment evicted — in both
    /// cases the query is re-planned around the gap and retried, so one bad
    /// fragment never costs the whole view. Without a cluster this loop is
    /// the exact PR-2 behaviour: first failure → whole-view quarantine →
    /// base-table fallback.
    fn stage_execute(
        &mut self,
        plan: &LogicalPlan,
        ctx: &mut QueryContext,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        // Simulated time burned on failed attempts (exhausted retries,
        // backoff) accumulates across rounds and is charged to the query.
        let mut debt_retries = 0u64;
        let mut debt_secs = 0.0f64;
        let mut rounds = 0u32;
        loop {
            // An open breaker rewrites the decision before any I/O: straight
            // to the base plan, no retries burned on the guarded view.
            self.read_view().breaker_guard(plan, ctx);
            match self.backend.execute(&ctx.qbest, &self.catalog, &self.fs) {
                Ok((result, mut metrics)) => {
                    metrics.retries += debt_retries;
                    metrics.penalty_secs += debt_secs;
                    ctx.trace.recovery.retries += metrics.retries as u32;
                    ctx.trace.recovery.penalty_secs += metrics.penalty_secs;
                    ctx.query_secs = self.backend.elapsed_secs(&metrics);
                    ctx.trace.execution.query_secs = ctx.query_secs;
                    self.read_view().breaker_record_success(ctx);
                    return Ok((result, metrics));
                }
                Err(e) => {
                    self.read_view().breaker_record_failure(&e, ctx);
                    let (r, s) = self.backend.drain_retry_debt();
                    debt_retries += r;
                    debt_secs += s;

                    // Fragment-granularity patching, sharded FS only.
                    if self.fs.cluster().is_some() && rounds < MAX_DEGRADED_ROUNDS {
                        let patched = match (&e, e.file()) {
                            (ExecError::TransientIo(_), Some(f)) if self.fs.outage_blocked(f) => {
                                self.mark_fragment_offline(f, ctx);
                                true
                            }
                            (ExecError::PermanentIo(_), Some(f)) => {
                                self.evict_lost_fragment(f, ctx)
                            }
                            _ => false,
                        };
                        if patched {
                            rounds += 1;
                            // Re-plan around the gap: matching now routes
                            // around offline/evicted fragments, falling back
                            // to base tables only for the affected region.
                            ctx.used_view = None;
                            ctx.qbest = plan.clone();
                            self.read_view().compute_rewritings(plan, ctx);
                            self.read_view().select_rewriting(plan, ctx);
                            continue;
                        }
                    }

                    if matches!(e, ExecError::CorruptIo(_)) {
                        ctx.trace.recovery.corrupt_fragments += 1;
                    }
                    // Attribute the failure to a view: the file the error
                    // names, or failing that the view the rewriting chose.
                    let vid = e
                        .file()
                        .and_then(|f| self.registry.view_owning_file(f))
                        .or_else(|| {
                            ctx.used_view
                                .as_deref()
                                .and_then(|name| self.registry.by_name(name))
                        });
                    let Some(vid) = vid else {
                        // No view involved — the base plan itself failed,
                        // which this model cannot recover from.
                        return Err(e);
                    };
                    self.quarantine_into_ctx(vid, ctx);
                    ctx.trace.recovery.base_table_fallbacks += 1;
                    ctx.used_view = None;
                    ctx.qbest = plan.clone();
                    // The original plan reads only durable base tables, so
                    // this cannot hit another fragment fault.
                    let (result, mut metrics) =
                        self.backend.execute(plan, &self.catalog, &self.fs)?;
                    metrics.retries += debt_retries;
                    metrics.penalty_secs += debt_secs;
                    ctx.trace.recovery.retries += metrics.retries as u32;
                    ctx.trace.recovery.penalty_secs += metrics.penalty_secs;
                    ctx.query_secs = self.backend.elapsed_secs(&metrics);
                    ctx.trace.execution.query_secs = ctx.query_secs;
                    return Ok((result, metrics));
                }
            }
        }
    }

    /// Record a file as offline (every replica on a down node): a temporary,
    /// fragment-granularity quarantine. The catalog is untouched — routing
    /// skips the file via the cluster map — so re-admission on node return
    /// is free.
    fn mark_fragment_offline(&mut self, file: FileId, ctx: &mut QueryContext) {
        if !self.offline.insert(file) {
            return;
        }
        self.obs.counter_inc("deepsea_fragment_outages_total", None);
        if self.obs.events_enabled() {
            let view = self
                .registry
                .view_owning_file(file)
                .map(|vid| self.registry.view(vid).name.clone());
            self.obs.event(
                ctx.tnow,
                DecisionEvent::FragmentOutage { file: file.0, view },
            );
        }
    }

    /// Evict exactly the fragment backed by a permanently lost file (all
    /// replicas dead), leaving the rest of the view serving. Returns `false`
    /// when the file backs a whole-view copy or no fragment — the caller
    /// then takes the whole-view quarantine path.
    fn evict_lost_fragment(&mut self, file: FileId, ctx: &mut QueryContext) -> bool {
        let Some(vid) = self.registry.view_owning_file(file) else {
            return false;
        };
        let (key, name) = {
            let v = self.registry.view(vid);
            if v.whole_file == Some(file) {
                return false;
            }
            (v.key.clone(), v.name.clone())
        };
        let mut hit = None;
        {
            let v = self.registry.view_mut(vid);
            'outer: for ps in v.partitions.values_mut() {
                for frag in ps.fragments.iter_mut() {
                    if frag.file == Some(file) {
                        frag.file = None;
                        hit = Some((ps.attr.clone(), frag.interval, frag.size));
                        break 'outer;
                    }
                }
            }
        }
        let Some((attr, interval, size)) = hit else {
            return false;
        };
        let _ = self.pool.release(size);
        self.offline.remove(&file);
        self.journal_emit(CatalogRecord::FragmentEvicted {
            view: key,
            attr,
            interval,
        });
        ctx.trace.recovery.quarantined_bytes += size;
        self.obs.counter_inc("deepsea_fragment_losses_total", None);
        if self.obs.events_enabled() {
            self.obs.event(
                ctx.tnow,
                DecisionEvent::Quarantine {
                    view: name,
                    files: 1,
                    bytes: size,
                    fragments: 1,
                },
            );
        }
        true
    }

    /// Re-admit offline fragments whose nodes have returned, auditing each.
    /// Polled at the top of every `process_query` — the logical analogue of
    /// the namenode's block reports.
    fn readmit_offline(&mut self, tnow: crate::stats::LogicalTime) {
        if self.offline.is_empty() {
            return;
        }
        let back: Vec<FileId> = self
            .offline
            .iter()
            .copied()
            .filter(|f| !self.fs.outage_blocked(*f))
            .collect();
        for f in back {
            self.offline.remove(&f);
            self.obs
                .counter_inc("deepsea_fragment_readmissions_total", None);
            if self.obs.events_enabled() {
                self.obs
                    .event(tnow, DecisionEvent::FragmentReadmitted { file: f.0 });
            }
        }
    }
}
