//! The **write side** of the driver: every stage that mutates the catalog,
//! the pool, or the journal — statistics updates, candidate registration,
//! Φ-selection, materialization, eviction, `Smax` enforcement, and the
//! durable commit point.
//!
//! All of it runs behind the single writer (`&mut DeepSea`), one query at a
//! time, in ticket order. [`DeepSea::process_query`] is the serialized
//! commit: it re-runs the read path against the writer's *live* state (so
//! the committed decision never acts on a stale snapshot), then applies the
//! chosen configuration and publishes the next catalog epoch. Concurrent
//! readers meanwhile answer queries from the last published
//! [`crate::snapshot::ReadSnapshot`]; see [`crate::server`].

pub(crate) mod candidates;
pub(crate) mod evict;
pub(crate) mod materialize;
pub(crate) mod recover;
pub(crate) mod selection;
pub(crate) mod stats;

use deepsea_engine::exec::{ExecError, ExecMetrics};
use deepsea_engine::plan::LogicalPlan;
use deepsea_obs::DecisionEvent;
use deepsea_relation::Table;

use crate::durability::{stats_checkpoint, CatalogRecord, CatalogSnapshot};

use super::context::QueryContext;
use super::{DeepSea, JournalDebt, QueryOutcome};

impl DeepSea {
    /// Append one record to the attached journal (no-op without one).
    /// Transient journal-write failures are retried under the configured
    /// retry policy, accumulating backoff seconds into the journal debt; a
    /// record is never dropped (the final attempt forces the write). An armed
    /// simulated crash fires from inside the append and propagates as a
    /// panic — exactly the torn-state semantics the crash harness exercises.
    pub(crate) fn journal_emit(&mut self, record: CatalogRecord) {
        let Some(journal) = &self.journal else {
            return;
        };
        self.journal_debt.appends += 1;
        self.appends_since_snapshot += 1;
        let mut attempt = 0u32;
        loop {
            match journal.append(record.clone()) {
                Ok(_) => return,
                Err(_) if attempt < self.config.retry.max_retries => {
                    self.journal_debt.retries += 1;
                    self.journal_debt.penalty_secs += self.config.retry.backoff_secs(attempt);
                    attempt += 1;
                }
                Err(_) => {
                    // Out of retries: a catalog record must not be lost, so
                    // force the write (modelling a synchronous fsync path).
                    journal.append_infallible(record);
                    return;
                }
            }
        }
    }

    /// Take the journal debt accumulated since the last drain.
    pub(crate) fn drain_journal_debt(&mut self) -> JournalDebt {
        std::mem::take(&mut self.journal_debt)
    }

    /// The commit point of one processed query: record the clock advance,
    /// emit a statistics checkpoint / install a snapshot at the configured
    /// cadence, and charge the accumulated journal debt to the query.
    pub(crate) fn journal_commit(&mut self, ctx: &mut QueryContext) {
        if self.journal.is_some() {
            let tnow = ctx.tnow;
            if tnow.is_multiple_of(self.config.journal_checkpoint_every.max(1)) {
                let ckpt = stats_checkpoint(&self.registry, tnow);
                self.journal_emit(ckpt);
            }
            self.journal_emit(CatalogRecord::QueryCommitted { tnow });
            if tnow.is_multiple_of(self.config.journal_snapshot_every.max(1)) {
                if let Some(journal) = &self.journal {
                    journal.install_snapshot(CatalogSnapshot {
                        registry: self.registry.clone(),
                        clock: tnow,
                    });
                    ctx.trace.durability.snapshots += 1;
                    self.obs
                        .counter_inc("deepsea_journal_snapshots_total", None);
                    self.obs.event(
                        tnow,
                        DecisionEvent::JournalSnapshot {
                            appended_since_last: self.appends_since_snapshot,
                        },
                    );
                    self.appends_since_snapshot = 0;
                }
            }
        }
        let debt = self.drain_journal_debt();
        ctx.trace.durability.journal_appends += debt.appends;
        ctx.trace.durability.journal_retries += debt.retries;
        ctx.trace.durability.journal_penalty_secs += debt.penalty_secs;
        ctx.creation_secs += debt.penalty_secs;
        self.obs
            .counter_add("deepsea_journal_appends_total", None, debt.appends as u64);
        self.obs
            .counter_add("deepsea_journal_retries_total", None, debt.retries as u64);
    }

    /// Process one query — Algorithm 1, as a linear sequence of stages over
    /// a per-query [`QueryContext`].
    ///
    /// This is the **serialized commit**: stages 1 and 3 are pure read-path
    /// code run against the writer's live state (via
    /// [`DeepSea::read_view`]); everything else mutates the catalog and must
    /// hold the writer. Under the concurrent server this method is invoked
    /// once per ticket, in ticket order, and its committed outcome is
    /// bit-identical to the single-client serial run by construction.
    pub fn process_query(&mut self, plan: &LogicalPlan) -> Result<QueryOutcome, ExecError> {
        self.clock += 1;
        let tnow = self.clock;

        if !self.config.partition_policy.materializes() {
            return self.run_baseline(plan);
        }

        let mut ctx = QueryContext::new(plan, tnow);
        // ── 1. COMPUTEREWRITINGS (read path, live state) ─────────────────
        self.read_view().compute_rewritings(plan, &mut ctx);
        // ── 2. UPDATESTATS for every (potential) match ───────────────────
        self.stage_update_stats(plan, &mut ctx);
        // ── 3. SELECTREWRITING (read path, live state) ───────────────────
        self.read_view().select_rewriting(plan, &mut ctx);
        // ── 4. COMPUTEVIEWCAND / ADDCANDIDATES ───────────────────────────
        self.stage_register_candidates(&mut ctx);
        // ── 5. VIEWSELECTION ─────────────────────────────────────────────
        self.stage_select_configuration(&mut ctx);
        // ── 6. INSTRUMENT + EXECUTE, apply the chosen configuration ──────
        let (result, metrics) = self.stage_execute(plan, &mut ctx)?;
        self.stage_apply_evictions(&mut ctx);
        self.stage_materialize(&mut ctx)?;
        self.stage_charge_creation(&mut ctx);
        // ── 7. Enforce Smax with measured sizes ──────────────────────────
        self.stage_enforce_limit(&mut ctx);
        // ── 8. Durable commit point ──────────────────────────────────────
        self.journal_commit(&mut ctx);

        let outcome = QueryOutcome {
            result,
            elapsed_secs: ctx.query_secs + ctx.creation_secs,
            query_secs: ctx.query_secs,
            creation_secs: ctx.creation_secs,
            used_view: ctx.used_view,
            materialized: ctx.materialized,
            evicted: ctx.evicted,
            quarantined: ctx.quarantined,
            metrics,
            trace: ctx.trace,
        };
        self.observe_query(&outcome);
        Ok(outcome)
    }

    /// The Hive baseline: no matching, no materialization — and, unlike
    /// DeepSea's instrumented plans, full predicate pushdown ("most
    /// optimizers will push down selections", §10.2).
    fn run_baseline(&mut self, plan: &LogicalPlan) -> Result<QueryOutcome, ExecError> {
        let optimized = deepsea_engine::optimize::push_down_selections(plan, &self.catalog);
        let (result, metrics) = self.backend.execute(&optimized, &self.catalog, &self.fs)?;
        let query_secs = self.backend.elapsed_secs(&metrics);
        let mut ctx = QueryContext::new(plan, self.clock);
        ctx.query_secs = query_secs;
        ctx.trace.execution.query_secs = query_secs;
        self.journal_commit(&mut ctx);
        let outcome = QueryOutcome {
            result,
            elapsed_secs: query_secs + ctx.creation_secs,
            query_secs,
            creation_secs: ctx.creation_secs,
            used_view: None,
            materialized: Vec::new(),
            evicted: Vec::new(),
            quarantined: Vec::new(),
            metrics,
            trace: ctx.trace,
        };
        self.observe_query(&outcome);
        Ok(outcome)
    }

    /// Execute the chosen plan through the backend, with graceful
    /// degradation: if a rewritten plan fails (transient retries exhausted or
    /// a fragment permanently lost), quarantine the broken view and re-answer
    /// the query from base tables within the same call. Base tables are
    /// durable in this model — views only ever accelerate, never gate, an
    /// answer.
    fn stage_execute(
        &mut self,
        plan: &LogicalPlan,
        ctx: &mut QueryContext,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        match self.backend.execute(&ctx.qbest, &self.catalog, &self.fs) {
            Ok((result, metrics)) => {
                ctx.trace.recovery.retries += metrics.retries as u32;
                ctx.trace.recovery.penalty_secs += metrics.penalty_secs;
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                Ok((result, metrics))
            }
            Err(e) => {
                if matches!(e, ExecError::CorruptIo(_)) {
                    ctx.trace.recovery.corrupt_fragments += 1;
                }
                // Whatever retries the backend burned on the doomed attempt
                // still cost simulated time — collect the debt.
                let (debt_retries, debt_secs) = self.backend.drain_retry_debt();
                // Attribute the failure to a view: the file the error names,
                // or failing that the view the rewriting chose to read.
                let vid = e
                    .file()
                    .and_then(|f| self.registry.view_owning_file(f))
                    .or_else(|| {
                        ctx.used_view
                            .as_deref()
                            .and_then(|name| self.registry.by_name(name))
                    });
                let Some(vid) = vid else {
                    // No view involved — the base plan itself failed, which
                    // this model cannot recover from.
                    return Err(e);
                };
                self.quarantine_into_ctx(vid, ctx);
                ctx.trace.recovery.base_table_fallbacks += 1;
                ctx.used_view = None;
                ctx.qbest = plan.clone();
                // The original plan reads only durable base tables, so this
                // cannot hit another fragment fault.
                let (result, mut metrics) = self.backend.execute(plan, &self.catalog, &self.fs)?;
                metrics.retries += debt_retries;
                metrics.penalty_secs += debt_secs;
                ctx.trace.recovery.retries += metrics.retries as u32;
                ctx.trace.recovery.penalty_secs += metrics.penalty_secs;
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                Ok((result, metrics))
            }
        }
    }
}
