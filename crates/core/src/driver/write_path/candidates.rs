//! Stage 4 of Algorithm 1: derive **view candidates** (Definition 6) and
//! **partition candidates** (Definition 7) from the chosen plan and register
//! them with the statistics registry.

use deepsea_engine::plan::LogicalPlan;
use deepsea_engine::signature::Signature;
use deepsea_engine::subquery::{all_subplans, view_candidate_subplans};
use deepsea_relation::Predicate;

use crate::candidates::{clamp_to_domain, partition_candidates};
use crate::durability::CatalogRecord;
use crate::filter_tree::ViewId;
use crate::interval::Interval;
use crate::registry::PartitionState;
use crate::stats::LogicalTime;

use super::super::context::QueryContext;
use super::super::read_path::matching::attr_matches;
use super::super::DeepSea;

impl DeepSea {
    /// Derive and register this query's candidates, recording how much new
    /// work (views, tracked fragments) the query introduced.
    pub(crate) fn stage_register_candidates(&mut self, ctx: &mut QueryContext) {
        let views_before = self.registry.len();
        let new_cands = self.register_candidates(&ctx.qbest, ctx.tnow);
        ctx.trace.candidates.view_candidates = new_cands.len() as u32;
        ctx.trace.candidates.new_views = (self.registry.len() - views_before) as u32;
        let (selections, new_frags) = self.register_partition_candidates(&ctx.qbest, ctx.tnow);
        ctx.trace.candidates.partition_selections = selections;
        ctx.trace.candidates.new_fragments = new_frags;
        self.obs.counter_add(
            "deepsea_new_views_total",
            None,
            ctx.trace.candidates.new_views as u64,
        );
        self.obs
            .counter_add("deepsea_new_fragments_total", None, new_frags as u64);
        ctx.new_cands = new_cands;
    }

    /// Definition 6: register view candidates for the chosen plan's
    /// subqueries. Returns the ids of candidates relevant to this query.
    fn register_candidates(&mut self, qbest: &LogicalPlan, tnow: LogicalTime) -> Vec<ViewId> {
        let mut out = Vec::new();
        // Range selections anywhere in the chosen plan, used to anticipate
        // partitioned access when estimating first-use savings.
        let query_ranges: Vec<(String, (i64, i64))> = all_subplans(qbest)
            .into_iter()
            .filter_map(|(_, p)| match p {
                LogicalPlan::Select { pred, .. } => Some(collect_ranges(pred)),
                _ => None,
            })
            .flatten()
            .collect();
        let mut registrations: Vec<(LogicalPlan, Signature, u64, f64, f64, f64)> = Vec::new();
        {
            let estimator = self.estimator();
            for (_, sub) in view_candidate_subplans(qbest) {
                let Some(sig) = Signature::of(sub) else {
                    continue;
                };
                let est = estimator.estimate(sub);
                let est_size = est.out_bytes.max(1.0) as u64;
                let block = self.fs.block_config().block_bytes;
                // Reducers write the view in parallel as one output wave; the
                // per-file dispatch penalty only applies to the real fragment
                // count, which is measured at materialization time.
                let files = 1;
                let compute = estimator.estimated_secs(sub);
                // Marginal overhead of materializing during this query (the
                // computation is a by-product); used by the admission filter.
                let overhead = self.backend.write_secs(est_size, files);
                // Recreation cost (recompute + write); used in Φ (§7.1).
                let recreate = compute + overhead;
                // First-use saving: computing the subquery vs scanning the
                // view — anticipating partitioned access (only the fragments
                // the query's range needs) when the policy partitions.
                let mut scan_bytes = est_size;
                if self.config.partition_policy.partitions() {
                    let mut frac: f64 = 1.0;
                    for (col, (lo, hi)) in &query_ranges {
                        if let Some(d) = self.read_view().attr_domain(sub, col) {
                            if let Some(iv) = clamp_to_domain((*lo, *hi), &d) {
                                frac = frac.min(iv.width() as f64 / d.width() as f64);
                            }
                        }
                    }
                    scan_bytes = ((est_size as f64 * frac) as u64).max(1);
                }
                let saving = (compute - self.backend.scan_secs(scan_bytes, block)).max(0.0);
                registrations.push((sub.clone(), sig, est_size, recreate, overhead, saving));
            }
        }
        for (plan, sig, est_size, recreate, overhead, saving) in registrations {
            let key = sig.canonical_key();
            let prior = self.registry.by_key(&key);
            let is_new = prior.is_none();
            let was_quarantined = prior.is_some_and(|id| self.registry.view(id).is_quarantined());
            // Journal both first registrations and re-admissions — the two
            // cases where `register` mutates durable state.
            let record = (is_new || was_quarantined).then(|| CatalogRecord::ViewRegistered {
                plan: plan.clone(),
                sig: sig.clone(),
                est_size,
                est_cost: recreate,
                est_overhead: overhead,
                first_use: is_new.then_some((tnow, saving)),
            });
            let vid = self
                .registry
                .register(plan, sig, est_size, recreate, overhead);
            if is_new {
                // The view could have been used by this very query.
                self.registry.view_mut(vid).stats.record_use(tnow, saving);
            }
            if let Some(record) = record {
                self.journal_emit(record);
            }
            out.push(vid);
        }
        out
    }

    /// Definition 7: derive partition candidates from the range selections of
    /// the chosen plan. Returns `(range selections processed, fragments
    /// newly tracked)`.
    fn register_partition_candidates(
        &mut self,
        qbest: &LogicalPlan,
        tnow: LogicalTime,
    ) -> (u32, u32) {
        if !self.config.partition_policy.partitions() {
            return (0, 0);
        }
        // Collect (view id, attr, domain, query interval) tuples first.
        let mut work: Vec<(ViewId, String, Interval, Interval)> = Vec::new();
        for (_, sub) in all_subplans(qbest) {
            let LogicalPlan::Select { pred, input } = sub else {
                continue;
            };
            let is_shape = matches!(
                **input,
                LogicalPlan::Join { .. }
                    | LogicalPlan::Aggregate { .. }
                    | LogicalPlan::Project { .. }
            );
            if let Some(sig) = is_shape.then(|| Signature::of(input)).flatten() {
                // σ over a view-shaped subquery (Definition 7 on a tracked view).
                let Some(vid) = self.registry.by_key(&sig.canonical_key()) else {
                    continue;
                };
                for (col, (lo, hi)) in collect_ranges(pred) {
                    let Some(domain) = self.read_view().attr_domain(input, &col) else {
                        continue;
                    };
                    let Some(qiv) = clamp_to_domain((lo, hi), &domain) else {
                        continue;
                    };
                    work.push((vid, col, domain, qiv));
                }
            } else if let Some(view_name) = viewscan_name(input) {
                // σ over a (rewritten) view scan: refine the partitions of
                // the reused view — this is how progressive refinement keeps
                // happening once queries are answered from the pool.
                let Some(vid) = self.registry.by_name(view_name) else {
                    continue;
                };
                for (col, (lo, hi)) in collect_ranges(pred) {
                    // Refine the existing partition on this attribute, or —
                    // since a view may hold partitions on several attributes —
                    // start tracking a new one from the base-table domain.
                    let existing = self
                        .registry
                        .view(vid)
                        .partitions
                        .values()
                        .find(|p| attr_matches(&p.attr, &col))
                        .map(|p| (p.attr.clone(), p.domain));
                    let (attr, domain) = match existing {
                        Some(x) => x,
                        None => {
                            let plan = self.registry.view(vid).plan.clone();
                            match self.read_view().attr_domain(&plan, &col) {
                                Some(d) => (col.clone(), d),
                                None => continue,
                            }
                        }
                    };
                    let Some(qiv) = clamp_to_domain((lo, hi), &domain) else {
                        continue;
                    };
                    work.push((vid, attr, domain, qiv));
                }
            }
        }
        let selections = work.len() as u32;
        let mut new_frags = 0u32;
        for (vid, col, domain, qiv) in work {
            let tmax = self.config.tmax;
            // Buffer journal records while the registry borrow is live; emit
            // them afterwards in mutation order.
            let mut records: Vec<CatalogRecord> = Vec::new();
            let key = self.registry.view(vid).key.clone();
            let view = self.registry.view_mut(vid);
            let view_size = view.stats.size;
            if !view.partitions.contains_key(&col) {
                records.push(CatalogRecord::PartitionTracked {
                    view: key.clone(),
                    attr: col.clone(),
                    domain,
                });
            }
            let ps = view
                .partitions
                .entry(col.clone())
                .or_insert_with(|| PartitionState::new(col.clone(), domain));
            if ps.add_boundary(qiv.lo) {
                records.push(CatalogRecord::BoundaryAdded {
                    view: key.clone(),
                    attr: col.clone(),
                    point: qiv.lo,
                });
            }
            if qiv.hi < ps.domain.hi && ps.add_boundary(qiv.hi + 1) {
                records.push(CatalogRecord::BoundaryAdded {
                    view: key.clone(),
                    attr: col.clone(),
                    point: qiv.hi + 1,
                });
            }
            let base = ps.candidate_base();
            let mut cands = partition_candidates(&base, &ps.domain, &qiv);
            // §9 "Bounding Fragment Size": chop candidates larger than
            // φ·S(V) into equal pieces so cold regions never become one
            // monolithic fragment.
            if let Some(phi) = self.config.phi_max_fraction {
                let limit = (phi * view_size as f64).max(1.0);
                cands = cands
                    .into_iter()
                    .flat_map(|c| {
                        let est = ps.estimate_size(&c, view_size) as f64;
                        if est > limit {
                            c.chop((est / limit).ceil() as usize)
                        } else {
                            vec![c]
                        }
                    })
                    .collect();
            }
            for cand in cands {
                let est = ps.estimate_size(&cand, view_size);
                let is_new = ps.find(&cand).is_none();
                let fid = ps.track(cand, est);
                if is_new {
                    new_frags += 1;
                    let hit = qiv.contains(&cand).then_some(tnow);
                    records.push(CatalogRecord::FragmentTracked {
                        view: key.clone(),
                        attr: col.clone(),
                        interval: cand,
                        est_size: est,
                        hit,
                    });
                }
                // Freshly-tracked candidates inside the query range would
                // have been used by this query; existing fragments already
                // recorded their hit during the matching phase.
                if is_new && qiv.contains(&cand) {
                    let frag = ps.frag_mut(fid).expect("just tracked");
                    frag.stats.record_hit(tnow);
                    frag.stats.prune(tnow, tmax);
                }
            }
            for record in records {
                self.journal_emit(record);
            }
        }
        (selections, new_frags)
    }
}

/// The view name a plan scans, reached through any chain of
/// selections/projections, if any.
pub(crate) fn viewscan_name(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::ViewScan(v) => Some(&v.view_name),
        LogicalPlan::Select { input, .. } | LogicalPlan::Project { input, .. } => {
            viewscan_name(input)
        }
        _ => None,
    }
}

/// All range conjuncts of a predicate as `(column, (lo, hi))`.
pub(crate) fn collect_ranges(pred: &Predicate) -> Vec<(String, (i64, i64))> {
    pred.conjuncts()
        .into_iter()
        .filter_map(|c| match c {
            Predicate::Range { col, low, high } => Some((col.clone(), (*low, *high))),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_ranges_takes_range_conjuncts_only() {
        let pred = Predicate::and(vec![
            Predicate::range("fact.k", 10, 20),
            Predicate::eq("dim.label", "l3"),
            Predicate::range("fact.v", 0, 5),
        ]);
        let ranges = collect_ranges(&pred);
        assert_eq!(
            ranges,
            vec![
                ("fact.k".to_string(), (10, 20)),
                ("fact.v".to_string(), (0, 5)),
            ]
        );
    }

    #[test]
    fn collect_ranges_empty_for_non_range_predicates() {
        let pred = Predicate::eq("dim.label", "l1");
        assert!(collect_ranges(&pred).is_empty());
    }

    #[test]
    fn viewscan_name_pierces_select_and_project_chains() {
        use deepsea_engine::plan::ViewScanInfo;
        use deepsea_relation::{DataType, Field, Schema};
        let scan = LogicalPlan::ViewScan(ViewScanInfo {
            view_name: "v12".into(),
            files: vec![],
            schema: Schema::new(vec![Field::new("v.k", DataType::Int)]),
        });
        let wrapped = scan
            .select(Predicate::range("v.k", 0, 1))
            .project(vec!["v.k"]);
        assert_eq!(viewscan_name(&wrapped), Some("v12"));
        assert_eq!(viewscan_name(&LogicalPlan::scan("t")), None);
    }
}
