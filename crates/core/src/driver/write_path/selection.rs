//! Stage 5 of Algorithm 1: build `ALLCAND = Vsel ∪ Psel ∪ {materialized
//! views and fragments}` and run the Φ-ranked greedy selection under `Smax`,
//! deciding what to materialize and what to evict.

use std::collections::BTreeSet;

use deepsea_obs::DecisionEvent;

use crate::filter_tree::ViewId;
use crate::matching::partition_matching;
use crate::mle::fit_normal;
use crate::policy::{PartitionPolicy, ValueModel};
use crate::selection::{select_configuration, CandidateKind, RankedItem, SelectionResult};
use crate::stats::LogicalTime;

use super::super::context::QueryContext;
use super::super::DeepSea;

impl DeepSea {
    /// Run selection over this query's candidates plus everything the pool
    /// already holds; the chosen configuration lands in `ctx.selection`.
    pub(crate) fn stage_select_configuration(&self, ctx: &mut QueryContext) {
        let items = self.build_allcand(&ctx.new_cands, ctx.tnow);
        ctx.trace.selection.considered = items.len() as u32;
        // Audit copy of ALLCAND, taken only when the decision log listens —
        // the selection below runs on the exact same items either way.
        let audit_items = if self.obs.events_enabled() {
            Some(items.clone())
        } else {
            None
        };
        let selection = select_configuration(items, self.config.smax);
        ctx.trace.selection.planned_creations = selection.to_create.len() as u32;
        ctx.trace.selection.planned_evictions = selection.to_evict.len() as u32;
        if let Some(items) = audit_items {
            self.observe_selection(&items, &selection, ctx.tnow);
        }
        if self.obs.enabled() {
            self.obs.counter_add(
                "deepsea_candidates_considered_total",
                None,
                ctx.trace.selection.considered as u64,
            );
            self.observe_mle_fits(ctx.tnow);
        }
        ctx.selection = selection;
    }

    /// Log one `selection_verdict` audit event per `ALLCAND` item. An item
    /// absent from all three result lists was rejected by admission sizing
    /// (unmaterialized, didn't fit the Φ-ranked prefix).
    fn observe_selection(
        &self,
        items: &[RankedItem],
        selection: &SelectionResult,
        tnow: LogicalTime,
    ) {
        if !self.obs.enabled() {
            return;
        }
        for item in items {
            let verdict = if selection.to_create.iter().any(|i| i.kind == item.kind) {
                "create"
            } else if selection.to_evict.iter().any(|i| i.kind == item.kind) {
                "evict"
            } else if selection.to_keep.iter().any(|i| i.kind == item.kind) {
                "keep"
            } else {
                "reject"
            };
            self.obs.observe("deepsea_phi", None, item.phi);
            self.obs.event(
                tnow,
                DecisionEvent::SelectionVerdict {
                    item: self.describe_item(&item.kind),
                    verdict,
                    phi: item.phi,
                    size: item.size,
                    materialized: item.materialized,
                },
            );
        }
    }

    /// Record MLE fit quality (§7.1) for every partition the policy smooths.
    /// The fit is recomputed here — a pure function of the same statistics
    /// `fragment_values` read — so observation feeds no decision.
    fn observe_mle_fits(&self, tnow: LogicalTime) {
        if !self.obs.enabled() {
            return;
        }
        if !matches!(
            self.config.value_model,
            ValueModel::DeepSea { use_mle: true }
        ) {
            return;
        }
        let tmax = self.config.tmax;
        for view in self.registry.iter() {
            for ps in view.partitions.values() {
                if !ps.any_materialized() {
                    continue;
                }
                let weighted: Vec<_> = ps
                    .fragments
                    .iter()
                    .map(|f| (f.interval, f.stats.decayed_hits(tnow, tmax)))
                    .collect();
                let total: f64 = weighted.iter().map(|(_, h)| h).sum();
                let Some(fit) = fit_normal(&weighted) else {
                    continue;
                };
                let label = format!("{}.{}", view.name, ps.attr);
                self.obs
                    .gauge_set("deepsea_mle_mean", Some(&label), fit.mean);
                self.obs.gauge_set("deepsea_mle_std", Some(&label), fit.std);
                self.obs.event(
                    tnow,
                    DecisionEvent::MleFit {
                        view: view.name.clone(),
                        attr: ps.attr.clone(),
                        mean: fit.mean,
                        std: fit.std,
                        total_hits: total,
                        fragments: ps.fragments.len() as u64,
                    },
                );
            }
        }
    }

    /// Build `ALLCAND` — also used by `enforce_limit` to re-rank the pool.
    pub(crate) fn build_allcand(&self, new_cands: &[ViewId], tnow: LogicalTime) -> Vec<RankedItem> {
        let tmax = self.config.tmax;
        let vm = self.config.value_model;
        let mut items = Vec::new();
        let mut included: BTreeSet<ViewId> = BTreeSet::new();

        // Vsel: this query's unmaterialized view candidates passing COST ≤ B.
        for &vid in new_cands {
            if !included.insert(vid) {
                continue;
            }
            let view = self.registry.view(vid);
            if view.is_materialized() {
                continue;
            }
            let benefit = vm.view_benefit(&view.stats, tnow, tmax);
            if view.creation_overhead > benefit {
                continue;
            }
            // Under the progressive policy a new partitioned view's *initial
            // fragments* are admitted individually — "candidate views and
            // fragments are treated alike" (§7.3). A pool far smaller than
            // the view can still admit its hot fragments.
            let progressive = matches!(
                self.config.partition_policy,
                PartitionPolicy::Progressive { .. }
            );
            let hinted = view
                .partitions
                .values()
                .max_by_key(|p| (p.boundaries.len(), p.fragments.len()))
                .filter(|p| !p.fragments.is_empty());
            match hinted {
                Some(ps) if progressive => {
                    let values =
                        vm.fragment_values(ps, view.stats.size, view.stats.cost, tnow, tmax);
                    // Tracked candidates can overlap (pieces from different
                    // queries' splits); the initial materialization keeps a
                    // greedy Φ-ranked *disjoint* subset so the view is not
                    // written multiple times over.
                    let mut ranked: Vec<(&crate::fragment::FragmentMeta, f64)> =
                        ps.fragments.iter().zip(values).collect();
                    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
                    let mut taken: Vec<crate::interval::Interval> = Vec::new();
                    for (frag, phi) in ranked {
                        if taken.iter().any(|iv| iv.overlaps(&frag.interval)) {
                            continue;
                        }
                        taken.push(frag.interval);
                        items.push(RankedItem {
                            kind: CandidateKind::Fragment(view.id, ps.attr.clone(), frag.id),
                            phi,
                            size: frag.size,
                            materialized: false,
                        });
                    }
                }
                _ => items.push(RankedItem {
                    kind: CandidateKind::WholeView(vid),
                    phi: vm.view_value(&view.stats, tnow, tmax),
                    size: view.stats.size,
                    materialized: false,
                }),
            }
        }

        for view in self.registry.iter() {
            // Materialized whole views partake (needed for NP-style pools).
            if view.whole_file.is_some() {
                items.push(RankedItem {
                    kind: CandidateKind::WholeView(view.id),
                    phi: vm.view_value(&view.stats, tnow, tmax),
                    size: view.stats.size,
                    materialized: true,
                });
            }
            for ps in view.partitions.values() {
                if !ps.any_materialized() {
                    continue;
                }
                let values = vm.fragment_values(ps, view.stats.size, view.stats.cost, tnow, tmax);
                for (frag, phi) in ps.fragments.iter().zip(values) {
                    if frag.is_materialized() {
                        items.push(RankedItem {
                            kind: CandidateKind::Fragment(view.id, ps.attr.clone(), frag.id),
                            phi,
                            size: frag.size,
                            materialized: true,
                        });
                    } else if self.config.partition_policy.repartitions() {
                        // Psel: refinement candidates passing COST(Icand) ≤ B(I)
                        // (§7.2 — only for partitions already in the pool).
                        // A candidate that is already covered nearly as
                        // cheaply by materialized fragments brings no marginal
                        // benefit — skip it (the cost-based refinement
                        // decision of §2).
                        let block = self.fs.block_config().block_bytes;
                        let mats = ps.materialized();
                        let cover_bytes = partition_matching(&frag.interval, &mats).map(|cover| {
                            cover
                                .iter()
                                .filter_map(|id| ps.frag(*id))
                                .map(|f| f.size)
                                .sum::<u64>()
                        });
                        if let Some(cb) = cover_bytes {
                            if cb <= frag.size.saturating_mul(5) / 4 {
                                continue;
                            }
                        }
                        // COST(Icand) = wwrite·S(Icand) + Σ wread·S(I), here at
                        // cluster-effective rates so the units match benefits.
                        let read_bytes: u64 = ps
                            .fragments
                            .iter()
                            .filter(|f| f.is_materialized() && f.interval.overlaps(&frag.interval))
                            .map(|f| f.size)
                            .sum();
                        let create_cost = if read_bytes == 0 {
                            // Nothing materialized overlaps: the fragment must
                            // be rebuilt by recomputing the view (§7.1: the
                            // fragment's cost is its view's creation cost).
                            view.stats.cost
                        } else {
                            self.backend
                                .write_secs(frag.size, frag.size.div_ceil(block).max(1))
                                + self.backend.scan_secs(read_bytes, block)
                        };
                        // Admission benefit: what each (decayed) hit actually
                        // saves over today's best access to this range — the
                        // cover read (or a full recompute when uncovered)
                        // versus reading just this fragment. A sharper proxy
                        // for B(I) than the size-share formula, which is kept
                        // for the eviction ranking Φ above.
                        let per_hit_saving = match cover_bytes {
                            Some(cb) => (self.backend.scan_secs(cb, block)
                                - self.backend.scan_secs(frag.size, block))
                            .max(0.0),
                            None => (view.stats.cost - self.backend.scan_secs(frag.size, block))
                                .max(0.0),
                        };
                        let benefit = per_hit_saving * frag.stats.decayed_hits(tnow, tmax);
                        if create_cost <= benefit {
                            items.push(RankedItem {
                                kind: CandidateKind::Fragment(view.id, ps.attr.clone(), frag.id),
                                phi,
                                size: frag.size,
                                materialized: false,
                            });
                        }
                    }
                }
            }
        }
        items
    }
}
