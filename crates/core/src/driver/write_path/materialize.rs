//! Stage 6 of Algorithm 1, write side: materialize the views and fragments
//! selection chose, as a by-product of the running query. Only the
//! write/repartition overhead is charged to the query (§7.2), as one
//! combined instrumented MapReduce job.

use std::collections::BTreeMap;
use std::sync::Arc;

use deepsea_engine::exec::ExecError;
use deepsea_obs::DecisionEvent;
use deepsea_relation::Table;
use deepsea_storage::FileId;

use crate::durability::CatalogRecord;
use crate::filter_tree::ViewId;
use crate::fragment::FragmentId;
use crate::interval::Interval;
use crate::matching::partition_matching;
use crate::policy::PartitionPolicy;
use crate::registry::PartitionState;
use crate::selection::{apply_size_bounds, equi_depth_intervals, CandidateKind};
use crate::stats::LogicalTime;

use super::super::context::{CreationCharge, QueryContext};
use super::super::DeepSea;

/// A materialized source fragment: id, interval, file, size.
type SourceFrag = (FragmentId, Interval, FileId, u64);

impl DeepSea {
    /// Materialize everything selection planned, accumulating the I/O into
    /// `ctx.charge` and the written names into `ctx.materialized`.
    pub(crate) fn stage_materialize(&mut self, ctx: &mut QueryContext) -> Result<(), ExecError> {
        // Views computed once per query for multi-fragment materialization.
        // BTreeMap (not HashMap): this cache sits on the decision path, and
        // the D1 lint bans hash collections there — any future iteration
        // would depend on hash order and break bit-identical replay.
        let mut view_cache: BTreeMap<ViewId, Arc<Table>> = BTreeMap::new();
        let to_create = ctx.selection.to_create.clone();
        for item in &to_create {
            let (CandidateKind::WholeView(vid) | CandidateKind::Fragment(vid, _, _)) = &item.kind;
            let vid = *vid;
            // A view quarantined earlier in this query (e.g. by the execution
            // fallback) has nothing trustworthy to build on.
            if self.registry.view(vid).is_quarantined() {
                continue;
            }
            let res = match &item.kind {
                CandidateKind::WholeView(vid) => self.materialize_view(*vid, ctx.tnow),
                CandidateKind::Fragment(vid, attr, fid) => self
                    .materialize_fragment(*vid, attr, *fid, &mut view_cache)
                    .map(|opt| match opt {
                        Some((c, desc)) => (c, vec![desc]),
                        None => (CreationCharge::default(), Vec::new()),
                    }),
            };
            match res {
                Ok((c, descs)) => {
                    ctx.charge.absorb(c);
                    ctx.materialized.extend(descs);
                }
                Err(
                    e @ (ExecError::TransientIo(_)
                    | ExecError::PermanentIo(_)
                    | ExecError::CorruptIo(_)),
                ) => {
                    // A source fragment died (after retries) or failed its
                    // checksum while we were building on it. Nothing was
                    // written — the fallible reads all happen before any
                    // create — so quarantine the view and keep materializing
                    // the rest of the plan.
                    if matches!(e, ExecError::CorruptIo(_)) {
                        ctx.trace.recovery.corrupt_fragments += 1;
                    }
                    self.quarantine_into_ctx(vid, ctx);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Convert the accumulated I/O into this query's creation seconds — one
    /// combined instrumented job: reads for repartitioning, writes for all
    /// new views/fragments.
    pub(crate) fn stage_charge_creation(&self, ctx: &mut QueryContext) {
        let block = self.fs.block_config().block_bytes;
        let charge = ctx.charge;
        let mut creation_secs = 0.0;
        if charge.read_bytes > 0 {
            creation_secs += self.backend.scan_secs(charge.read_bytes, block);
        }
        if charge.files > 0 {
            creation_secs += self.backend.write_secs(charge.write_bytes, charge.files);
        }
        // Retry backoff and latency spikes absorbed by materialization I/O
        // are real simulated time (+0.0 on a fault-free run).
        creation_secs += charge.penalty_secs;
        ctx.creation_secs = creation_secs;
        ctx.trace.materialization.bytes_read = charge.read_bytes;
        ctx.trace.materialization.bytes_written = charge.write_bytes;
        ctx.trace.materialization.files_written = charge.files;
        ctx.trace.materialization.fragments_covered = charge.cover_reads;
        ctx.trace.materialization.creation_secs = creation_secs;
        ctx.trace.recovery.retries += charge.retries;
        ctx.trace.recovery.penalty_secs += charge.penalty_secs;
    }

    /// Materialize a view (whole or initially partitioned). Returns the
    /// creation overhead in seconds and descriptions of what was written.
    fn materialize_view(
        &mut self,
        vid: ViewId,
        _tnow: LogicalTime,
    ) -> Result<(CreationCharge, Vec<String>), ExecError> {
        let (plan, name, key) = {
            let v = self.registry.view(vid);
            if v.is_materialized() {
                return Ok((CreationCharge::default(), Vec::new()));
            }
            (v.plan.clone(), v.name.clone(), v.key.clone())
        };
        // Compute the view's content. In the real system this is a by-product
        // of the instrumented query's execution, so only the *write* side is
        // charged below.
        let (table, _compute_metrics) = self.backend.execute(&plan, &self.catalog, &self.fs)?;
        let actual_size = table.sim_bytes();
        let schema = table.schema.clone();

        // Choose a partition layout.
        let attr_choice: Option<(String, Interval, Vec<Interval>)> = {
            let v = self.registry.view(vid);
            self.choose_layout(v.partitions.values(), actual_size, &table)
        };

        let mut descs = Vec::new();
        let mut charge = CreationCharge::default();
        let mut whole_file = None;
        let mut whole_nodes: Vec<u32> = Vec::new();
        let replicas = self.replicas_for(vid);
        match attr_choice {
            Some((attr, _domain, intervals)) if self.config.partition_policy.partitions() => {
                let col_idx = schema
                    .index_of(&attr)
                    .ok_or_else(|| ExecError::UnknownColumn(attr.clone()))?;
                for iv in &intervals {
                    let rows: Vec<_> = table
                        .rows
                        .iter()
                        .filter(|r| match r[col_idx].as_int() {
                            Some(v) => iv.contains_point(v),
                            None => false,
                        })
                        .cloned()
                        .collect();
                    let frag_table = Table::new(schema.clone(), rows, table.bytes_per_row);
                    let size = frag_table.sim_bytes();
                    let (file, nodes) = self.create_placed(
                        format!("{name}.{attr}{iv}"),
                        size,
                        frag_table,
                        &mut charge,
                        replicas,
                    );
                    charge.write_bytes += size;
                    charge.files += 1;
                    let view = self.registry.view_mut(vid);
                    let ps = view
                        .partitions
                        .get_mut(&attr)
                        .expect("invariant: layout chosen from existing partition");
                    let fid = ps.track(*iv, size);
                    let frag = ps.frag_mut(fid).expect("invariant: just tracked");
                    frag.file = Some(file);
                    frag.size = size;
                    let _ = self.pool.reserve(size);
                    self.journal_emit(CatalogRecord::FragmentMaterialized {
                        view: key.clone(),
                        attr: attr.clone(),
                        interval: *iv,
                        file,
                        size,
                        schema: Some(schema.clone()),
                        nodes,
                    });
                    descs.push(format!("{name}.{attr}{iv}"));
                }
            }
            _ => {
                let size = table.sim_bytes();
                let (file, nodes) =
                    self.create_placed(name.clone(), size, table, &mut charge, replicas);
                whole_nodes = nodes;
                charge.write_bytes += size;
                charge.files += 1;
                self.registry.view_mut(vid).whole_file = Some(file);
                let _ = self.pool.reserve(size);
                whole_file = Some(file);
                descs.push(name.clone());
            }
        }
        let secs = self.backend.write_secs(charge.write_bytes, charge.files);
        let recompute = self.estimator().estimated_secs(&plan) + secs;
        let view = self.registry.view_mut(vid);
        view.schema = Some(schema.clone());
        view.stats.set_measured(actual_size, recompute);
        view.creation_overhead = secs;
        match whole_file {
            Some(file) => self.journal_emit(CatalogRecord::ViewMaterialized {
                view: key,
                file,
                size: actual_size,
                cost: recompute,
                overhead: secs,
                schema,
                nodes: whole_nodes,
            }),
            None => self.journal_emit(CatalogRecord::ViewStatsMeasured {
                view: key,
                size: actual_size,
                cost: recompute,
                overhead: secs,
                schema,
            }),
        }
        self.obs.counter_add(
            "deepsea_mat_bytes_written_total",
            Some(&name),
            charge.write_bytes,
        );
        self.obs
            .counter_add("deepsea_mat_files_total", Some(&name), charge.files);
        Ok((charge, descs))
    }

    /// Pick the partition attribute and initial intervals for a new view.
    fn choose_layout<'a>(
        &self,
        partitions: impl Iterator<Item = &'a PartitionState>,
        view_size: u64,
        table: &Table,
    ) -> Option<(String, Interval, Vec<Interval>)> {
        // Prefer the partition with the most recorded boundaries (the
        // attribute the workload actually selects on).
        let ps = partitions.max_by_key(|p| (p.boundaries.len(), p.fragments.len()))?;
        let intervals = match self.config.partition_policy {
            PartitionPolicy::EquiDepth { fragments } => {
                let col = table.schema.index_of(&ps.attr)?;
                let mut values: Vec<i64> =
                    table.rows.iter().filter_map(|r| r[col].as_int()).collect();
                values.sort_unstable();
                equi_depth_intervals(&values, fragments, &ps.domain)
            }
            PartitionPolicy::Progressive { .. } => apply_size_bounds(
                &ps.boundary_partition(),
                &ps.domain,
                view_size,
                self.config.min_fragment_bytes,
                self.config.phi_max_fraction,
            ),
            _ => return None,
        };
        Some((ps.attr.clone(), ps.domain, intervals))
    }

    /// Materialize one refinement fragment on an existing partition.
    /// Charges `wread` for every overlapping materialized fragment read and
    /// `wwrite` for everything written (§7.2). Under horizontal (non-
    /// overlapping) partitioning, split fragments are rewritten and dropped;
    /// under overlapping partitioning the originals are kept.
    fn materialize_fragment(
        &mut self,
        vid: ViewId,
        attr: &str,
        fid: FragmentId,
        view_cache: &mut BTreeMap<ViewId, Arc<Table>>,
    ) -> Result<Option<(CreationCharge, String)>, ExecError> {
        let overlapping_mode = self.config.partition_policy.overlapping();
        let (name, key, schema, target, sources): (String, String, _, Interval, Vec<SourceFrag>) = {
            let view = self.registry.view(vid);
            let Some(ps) = view.partitions.get(attr) else {
                return Ok(None);
            };
            let Some(frag) = ps.frag(fid) else {
                return Ok(None);
            };
            if frag.is_materialized() {
                return Ok(None);
            }
            let target = frag.interval;
            let sources = ps
                .fragments
                .iter()
                .filter(|f| f.is_materialized() && f.interval.overlaps(&target))
                .map(|f| {
                    let file = f
                        .file
                        .expect("invariant: is_materialized() checked in the filter above");
                    (f.id, f.interval, file, f.size)
                })
                .collect::<Vec<_>>();
            let schema = view.schema.clone();
            match schema {
                Some(s) if !sources.is_empty() => {
                    (view.name.clone(), view.key.clone(), s, target, sources)
                }
                // No materialized source covers the target (fresh view, or a
                // fully-evicted region): build the fragment from the view's
                // plan instead.
                _ => return self.materialize_fragment_from_plan(vid, attr, fid, view_cache),
            }
        };

        let col_idx = schema
            .index_of(attr)
            .ok_or_else(|| ExecError::UnknownColumn(attr.to_string()))?;

        // Use an Algorithm-2 cover so each row is taken exactly once even
        // when materialized source fragments overlap each other.
        let cover = partition_matching(
            &target,
            &sources
                .iter()
                .map(|(id, iv, _, _)| (*id, *iv))
                .collect::<Vec<_>>(),
        );
        let Some(cover) = cover else { return Ok(None) };
        let mut charge = CreationCharge {
            cover_reads: cover.len() as u64,
            ..CreationCharge::default()
        };

        // Every fallible read happens before any create: a fragment lost
        // mid-repartition must surface as an error with *nothing* written,
        // never as a silently incomplete fragment.
        let mut rows = Vec::new();
        let mut next_lo = target.lo;
        let mut source_tables = Vec::new();
        for fid2 in &cover {
            let (_, iv, file, _) = sources
                .iter()
                .find(|(id, ..)| id == fid2)
                .expect("invariant: partition_matching covers only from the given sources");
            let (payload, bytes) = self
                .read_retrying(*file, &mut charge)
                .map_err(ExecError::from)?;
            charge.read_bytes += bytes;
            let take = Interval::new(next_lo.max(target.lo), iv.hi.min(target.hi));
            for r in &payload.rows {
                if let Some(v) = r[col_idx].as_int() {
                    if take.contains_point(v) {
                        rows.push(r.clone());
                    }
                }
            }
            source_tables.push((*fid2, Arc::clone(&payload)));
            next_lo = iv.hi + 1;
            if next_lo > target.hi {
                break;
            }
        }

        // Horizontal mode: rewrite the remainders of every split fragment and
        // drop the originals. Overlapping mode: keep them (§10.4). Sources
        // that overlapped the target but were not in the cover are read here,
        // still ahead of any write.
        let mut split_work: Vec<(FragmentId, Interval, u64)> = Vec::new();
        if !overlapping_mode {
            for (sid, iv, _, size) in &sources {
                split_work.push((*sid, *iv, *size));
            }
        }
        // BTreeMap for the same D1 reason as `view_cache` above.
        let mut extra_payloads: BTreeMap<FragmentId, Arc<Table>> = BTreeMap::new();
        for (sid, _iv, _size) in &split_work {
            if source_tables.iter().any(|(id, _)| id == sid) {
                continue;
            }
            let file = sources
                .iter()
                .find(|(id, ..)| id == sid)
                .expect("invariant: split_work is built from sources")
                .2;
            let (p, bytes) = self
                .read_retrying(file, &mut charge)
                .map_err(ExecError::from)?;
            charge.read_bytes += bytes;
            extra_payloads.insert(*sid, p);
        }

        let bytes_per_row = source_tables
            .first()
            .map(|(_, t)| t.bytes_per_row)
            .unwrap_or(1);
        let replicas = self.replicas_for(vid);
        let frag_table = Table::new(schema.clone(), rows, bytes_per_row);
        let new_size = frag_table.sim_bytes();
        let (new_file, new_nodes) = self.create_placed(
            format!("{name}.{attr}{target}"),
            new_size,
            frag_table,
            &mut charge,
            replicas,
        );
        charge.write_bytes += new_size;
        charge.files += 1;

        // Audit the refinement decision: in overlapping mode the sources
        // stay; in horizontal mode they are split and rewritten.
        if overlapping_mode && self.obs.events_enabled() {
            self.obs.event(
                self.clock,
                DecisionEvent::OverlapKept {
                    view: name.clone(),
                    attr: attr.to_string(),
                    target: target.to_string(),
                    sources: sources.len() as u64,
                },
            );
        }

        let mut remainder_meta: Vec<(Interval, FileId, u64, Vec<u32>)> = Vec::new();
        let mut dropped: Vec<FragmentId> = Vec::new();
        for (sid, iv, _size) in &split_work {
            // Remainder pieces of iv not covered by target.
            let mut pieces = Vec::new();
            if iv.lo < target.lo {
                pieces.push(Interval::new(iv.lo, target.lo - 1));
            }
            if iv.hi > target.hi {
                pieces.push(Interval::new(target.hi + 1, iv.hi));
            }
            let payload = source_tables
                .iter()
                .find(|(id, _)| id == sid)
                .map(|(_, t)| Arc::clone(t))
                .or_else(|| extra_payloads.get(sid).cloned())
                .expect("invariant: every split source was read above");
            for piece in pieces {
                let rows: Vec<_> = payload
                    .rows
                    .iter()
                    .filter(|r| r[col_idx].as_int().is_some_and(|v| piece.contains_point(v)))
                    .cloned()
                    .collect();
                let t = Table::new(schema.clone(), rows, payload.bytes_per_row);
                let size = t.sim_bytes();
                let (file, nodes) = self.create_placed(
                    format!("{name}.{attr}{piece}"),
                    size,
                    t,
                    &mut charge,
                    replicas,
                );
                charge.write_bytes += size;
                charge.files += 1;
                remainder_meta.push((piece, file, size, nodes));
            }
            dropped.push(*sid);
        }
        if !overlapping_mode && self.obs.events_enabled() {
            self.obs.event(
                self.clock,
                DecisionEvent::FragmentSplit {
                    view: name.clone(),
                    attr: attr.to_string(),
                    target: target.to_string(),
                    sources: cover.len() as u64,
                    remainders: remainder_meta.len() as u64,
                },
            );
        }

        // Update registry metadata, collecting what actually changed so the
        // journal records and pool ledger can be updated after the borrow.
        let mut dropped_meta: Vec<(Interval, u64)> = Vec::new();
        {
            let view = self.registry.view_mut(vid);
            let ps = view
                .partitions
                .get_mut(attr)
                .expect("invariant: partition existence checked above");
            if let Some(f) = ps.frag_mut(fid) {
                f.file = Some(new_file);
                f.size = new_size;
            }
            for sid in dropped {
                if let Some(f) = ps.frag_mut(sid) {
                    if let Some(file) = f.file.take() {
                        if let Some((_, secs)) = self.fs.delete_costed(file) {
                            charge.penalty_secs += secs;
                        }
                        dropped_meta.push((f.interval, f.size));
                    }
                }
            }
            for (piece, file, size, _) in &remainder_meta {
                let pid = ps.track(*piece, *size);
                let f = ps.frag_mut(pid).expect("invariant: just tracked");
                f.file = Some(*file);
                f.size = *size;
            }
        }
        let _ = self.pool.reserve(new_size);
        self.journal_emit(CatalogRecord::FragmentMaterialized {
            view: key.clone(),
            attr: attr.to_string(),
            interval: target,
            file: new_file,
            size: new_size,
            schema: None,
            nodes: new_nodes,
        });
        for (interval, size) in dropped_meta {
            let _ = self.pool.release(size);
            self.journal_emit(CatalogRecord::FragmentEvicted {
                view: key.clone(),
                attr: attr.to_string(),
                interval,
            });
        }
        for (piece, file, size, nodes) in remainder_meta {
            let _ = self.pool.reserve(size);
            self.journal_emit(CatalogRecord::FragmentMaterialized {
                view: key.clone(),
                attr: attr.to_string(),
                interval: piece,
                file,
                size,
                schema: None,
                nodes,
            });
        }

        self.obs.counter_add(
            "deepsea_mat_bytes_read_total",
            Some(&name),
            charge.read_bytes,
        );
        self.obs.counter_add(
            "deepsea_mat_bytes_written_total",
            Some(&name),
            charge.write_bytes,
        );
        self.obs
            .counter_add("deepsea_mat_files_total", Some(&name), charge.files);
        Ok(Some((charge, format!("{name}.{attr}{target}"))))
    }

    /// Build a fragment by computing the view's plan (used for initial
    /// partitioned materialization and for regions whose sources were
    /// evicted). As with whole-view materialization, the computation happens
    /// as a by-product of the running query, so only the write is charged.
    fn materialize_fragment_from_plan(
        &mut self,
        vid: ViewId,
        attr: &str,
        fid: FragmentId,
        view_cache: &mut BTreeMap<ViewId, Arc<Table>>,
    ) -> Result<Option<(CreationCharge, String)>, ExecError> {
        let (plan, name, key, target) = {
            let view = self.registry.view(vid);
            let Some(ps) = view.partitions.get(attr) else {
                return Ok(None);
            };
            let Some(frag) = ps.frag(fid) else {
                return Ok(None);
            };
            (
                view.plan.clone(),
                view.name.clone(),
                view.key.clone(),
                frag.interval,
            )
        };
        let table = match view_cache.get(&vid) {
            Some(t) => Arc::clone(t),
            None => {
                let (t, _metrics) = self.backend.execute(&plan, &self.catalog, &self.fs)?;
                let t = Arc::new(t);
                view_cache.insert(vid, Arc::clone(&t));
                t
            }
        };
        let schema = table.schema.clone();
        let Some(col_idx) = schema.index_of(attr) else {
            return Ok(None);
        };
        let full_size = table.sim_bytes();
        let rows: Vec<_> = table
            .rows
            .iter()
            .filter(|r| {
                r[col_idx]
                    .as_int()
                    .is_some_and(|v| target.contains_point(v))
            })
            .cloned()
            .collect();
        let frag_table = Table::new(schema.clone(), rows, table.bytes_per_row);
        let size = frag_table.sim_bytes();
        let mut charge = CreationCharge {
            write_bytes: size,
            files: 1,
            ..CreationCharge::default()
        };
        let (file, nodes) = self.create_placed(
            format!("{name}.{attr}{target}"),
            size,
            frag_table,
            &mut charge,
            self.replicas_for(vid),
        );
        let overhead = self.backend.write_secs(full_size, 1);
        let recompute = self.estimator().estimated_secs(&plan);
        let view = self.registry.view_mut(vid);
        let first_measure = view.schema.is_none();
        if first_measure {
            view.schema = Some(schema.clone());
            view.stats.set_measured(full_size, recompute + overhead);
            view.creation_overhead = overhead;
        }
        let ps = view
            .partitions
            .get_mut(attr)
            .expect("invariant: partition existence checked above");
        if let Some(f) = ps.frag_mut(fid) {
            f.file = Some(file);
            f.size = size;
        }
        let _ = self.pool.reserve(size);
        if first_measure {
            self.journal_emit(CatalogRecord::ViewStatsMeasured {
                view: key.clone(),
                size: full_size,
                cost: recompute + overhead,
                overhead,
                schema: schema.clone(),
            });
        }
        self.journal_emit(CatalogRecord::FragmentMaterialized {
            view: key,
            attr: attr.to_string(),
            interval: target,
            file,
            size,
            schema: Some(schema),
            nodes,
        });
        self.obs.counter_add(
            "deepsea_mat_bytes_written_total",
            Some(&name),
            charge.write_bytes,
        );
        self.obs
            .counter_add("deepsea_mat_files_total", Some(&name), charge.files);
        Ok(Some((charge, format!("{name}.{attr}{target}"))))
    }
}
