//! End-to-end tests of the staged query-lifecycle pipeline.

use super::context::QueryContext;
use super::*;
use crate::interval::Interval;
use crate::policy::{PartitionPolicy, ValueModel};
use deepsea_engine::exec::ExecError;
use deepsea_engine::plan::AggExpr;
use deepsea_engine::plan::LogicalPlan;
use deepsea_relation::generate::{ColumnGen, TableGen};
use deepsea_relation::{DataType, Field, Predicate, Schema};

/// A small star schema: fact(k ∈ [0,999], v) ⋈ dim(k, label).
fn catalog(rows: usize) -> Catalog {
    let mut c = Catalog::new();
    let fact = TableGen::new(
        Schema::new(vec![
            Field::new("fact.k", DataType::Int),
            Field::new("fact.v", DataType::Float),
        ]),
        vec![
            ColumnGen::UniformInt { low: 0, high: 999 },
            ColumnGen::UniformFloat {
                low: 0.0,
                high: 100.0,
            },
        ],
        // Simulated bytes per row: rows=2000 → ~40GB, i.e. cluster-scale
        // data where fragment-level savings clear the fixed MapReduce
        // stage overheads.
        20_000_000,
        42,
    )
    .generate(rows);
    let dim = TableGen::new(
        Schema::new(vec![
            Field::new("dim.k", DataType::Int),
            Field::new("dim.label", DataType::Str),
        ]),
        vec![
            ColumnGen::Serial { start: 0 },
            ColumnGen::Label {
                prefix: "l",
                card: 10,
            },
        ],
        10_000,
        43,
    )
    .generate(1000);
    c.register("fact", fact);
    c.register("dim", dim);
    c
}

fn query(lo: i64, hi: i64) -> LogicalPlan {
    LogicalPlan::scan("fact")
        .join(LogicalPlan::scan("dim"), vec![("fact.k", "dim.k")])
        .select(Predicate::range("fact.k", lo, hi))
        .aggregate(vec!["dim.label"], vec![AggExpr::count("cnt")])
}

fn ds(config: DeepSeaConfig) -> DeepSea {
    DeepSea::new(catalog(2000), config)
}

/// The first view with a materialized partition (the join view, in these
/// tests — the aggregate view is materialized whole).
fn partitioned_view(d: &DeepSea) -> &crate::registry::ViewMeta {
    d.registry()
        .iter()
        .find(|v| v.partitions.values().any(|p| p.any_materialized()))
        .expect("a partitioned view exists")
}

#[test]
fn hive_baseline_never_materializes() {
    let mut d = ds(DeepSeaConfig::default().with_policy(PartitionPolicy::NoMaterialization));
    for i in 0..3 {
        let out = d.process_query(&query(i * 10, i * 10 + 50)).unwrap();
        assert!(out.materialized.is_empty());
        assert!(out.used_view.is_none());
        assert_eq!(out.creation_secs, 0.0);
    }
    assert_eq!(d.pool_bytes(), 0);
    assert_eq!(d.registry().len(), 0);
}

#[test]
fn np_materializes_whole_view_and_reuses_it() {
    let mut d = ds(DeepSeaConfig::default().with_policy(PartitionPolicy::NoPartition));
    let out1 = d.process_query(&query(100, 150)).unwrap();
    assert!(
        !out1.materialized.is_empty(),
        "first query materializes: {out1:?}"
    );
    assert!(d.pool_bytes() > 0);
    // Distinct ranges so only logical (not exact) matching can help.
    let mut reused = false;
    let mut reuse_secs = f64::MAX;
    for i in 0..6 {
        let out = d.process_query(&query(200 + i, 260 + i)).unwrap();
        if out.used_view.is_some() {
            reused = true;
            reuse_secs = reuse_secs.min(out.query_secs);
        }
    }
    assert!(reused, "later queries reuse the whole view");
    assert!(
        reuse_secs < out1.query_secs,
        "reuse must be faster: {reuse_secs} vs {}",
        out1.query_secs
    );
}

#[test]
fn rewritten_results_match_hive_results() {
    let mut d_ds = ds(DeepSeaConfig::default());
    let mut d_h = ds(DeepSeaConfig::default().with_policy(PartitionPolicy::NoMaterialization));
    for (lo, hi) in [(100, 200), (120, 180), (150, 420), (0, 999), (130, 170)] {
        let q = query(lo, hi);
        let a = d_ds.process_query(&q).unwrap();
        let b = d_h.process_query(&q).unwrap();
        assert_eq!(
            a.result.fingerprint(),
            b.result.fingerprint(),
            "range [{lo},{hi}] must return identical results"
        );
    }
}

#[test]
fn deepsea_creates_partitioned_view_with_query_boundaries() {
    let mut d = ds(DeepSeaConfig::default().with_min_fragment_bytes(1));
    let out = d.process_query(&query(400, 600)).unwrap();
    assert!(
        out.materialized.len() >= 2,
        "partitioned into fragments: {out:?}"
    );
    // Find the join view and its partition.
    let view = partitioned_view(&d);
    let ps = view
        .partitions
        .values()
        .find(|p| p.any_materialized())
        .expect("partitioned");
    let mats = ps.materialized();
    assert!(mats.len() >= 3, "boundary partition has ≥3 fragments");
    let ivs: Vec<Interval> = mats.iter().map(|(_, iv)| *iv).collect();
    assert!(crate::interval::covers(&ivs, &ps.domain));
}

#[test]
fn partitioned_reuse_reads_less_than_whole_view() {
    let mut d = ds(DeepSeaConfig::default().with_min_fragment_bytes(1));
    d.process_query(&query(400, 600)).unwrap();
    // Narrow query inside the hot fragment.
    let out = d.process_query(&query(450, 550)).unwrap();
    assert!(out.used_view.is_some());
    let view = partitioned_view(&d);
    assert!(
        out.metrics.bytes_read < view.stats.size,
        "fragment read {} must be below whole view {}",
        out.metrics.bytes_read,
        view.stats.size
    );
}

#[test]
fn progressive_refinement_creates_new_fragments() {
    let mut d = ds(DeepSeaConfig::default()
        .with_min_fragment_bytes(1)
        .without_phi());
    d.process_query(&query(400, 600)).unwrap();
    // A query carving a sub-range of the cold left fragment [0,399]:
    // candidates [0,99],[100,200],[201,399] are generated; after enough
    // hits the refinement materializes.
    let mut refined = false;
    for _ in 0..20 {
        let out = d.process_query(&query(100, 200)).unwrap();
        if out.materialized.iter().any(|m| m.contains("[100, 200]")) {
            refined = true;
        }
    }
    assert!(refined, "repeated hits must refine the cold fragment");
    // And the refined fragment is then used.
    let out = d.process_query(&query(120, 180)).unwrap();
    assert!(out.used_view.is_some());
}

#[test]
fn no_repartition_policy_never_refines() {
    let cfg = DeepSeaConfig::default()
        .with_policy(PartitionPolicy::Progressive {
            overlapping: true,
            repartition: false,
        })
        .with_min_fragment_bytes(1);
    let mut d = ds(cfg);
    d.process_query(&query(400, 600)).unwrap();
    let frag_count = |d: &DeepSea| {
        d.registry()
            .iter()
            .flat_map(|v| v.partitions.values())
            .map(|p| p.materialized().len())
            .sum::<usize>()
    };
    let initial = frag_count(&d);
    for _ in 0..10 {
        d.process_query(&query(100, 200)).unwrap();
    }
    assert_eq!(frag_count(&d), initial, "NR must not add fragments");
}

#[test]
fn equi_depth_policy_creates_k_fragments() {
    let cfg = DeepSeaConfig::default()
        .with_policy(PartitionPolicy::EquiDepth { fragments: 6 })
        .with_min_fragment_bytes(1);
    let mut d = ds(cfg);
    d.process_query(&query(400, 600)).unwrap();
    let view = partitioned_view(&d);
    let ps = view
        .partitions
        .values()
        .find(|p| p.any_materialized())
        .expect("partitioned");
    assert_eq!(ps.materialized().len(), 6);
}

#[test]
fn pool_limit_is_respected() {
    // Tiny pool: force eviction churn but never exceed the limit.
    let smax = 60_000_000_000; // far below the ~80GB of candidate views
    let cfg = DeepSeaConfig::default()
        .with_smax(smax)
        .with_min_fragment_bytes(1);
    let mut d = ds(cfg);
    for i in 0..6 {
        let lo = (i * 150) % 800;
        d.process_query(&query(lo, lo + 100)).unwrap();
        assert!(
            d.pool_bytes() <= smax,
            "pool {} exceeds Smax {smax}",
            d.pool_bytes()
        );
    }
}

#[test]
fn eviction_reports_names() {
    let cfg = DeepSeaConfig::default()
        .with_smax(1) // pathological: nothing fits
        .with_min_fragment_bytes(1);
    let mut d = ds(cfg);
    let out = d.process_query(&query(400, 600)).unwrap();
    // Nothing can be admitted into a 1-byte pool...
    assert_eq!(d.pool_bytes(), 0, "{out:?}");
}

#[test]
fn overlapping_mode_keeps_big_fragment() {
    // φ disabled so a large cold fragment survives initial partitioning.
    let cfg = DeepSeaConfig::default()
        .with_min_fragment_bytes(1)
        .without_phi();
    let mut d = ds(cfg);
    d.process_query(&query(400, 600)).unwrap();
    for _ in 0..20 {
        d.process_query(&query(100, 200)).unwrap();
    }
    let view = partitioned_view(&d);
    let ps = view
        .partitions
        .values()
        .find(|p| p.any_materialized())
        .unwrap();
    let mats: Vec<Interval> = ps.materialized().iter().map(|(_, iv)| *iv).collect();
    // The original [0,399] fragment must still be materialized alongside
    // the refined [100,200] — overlap allowed.
    let has_big = mats
        .iter()
        .any(|iv| iv.contains(&Interval::new(100, 200)) && iv.width() > 101);
    let has_small = mats.iter().any(|iv| *iv == Interval::new(100, 200));
    assert!(has_small, "refined fragment exists: {mats:?}");
    assert!(has_big, "big fragment kept in overlapping mode: {mats:?}");
}

#[test]
fn horizontal_mode_splits_big_fragment() {
    let cfg = DeepSeaConfig::default()
        .with_policy(PartitionPolicy::Progressive {
            overlapping: false,
            repartition: true,
        })
        .with_min_fragment_bytes(1)
        .without_phi();
    let mut d = ds(cfg);
    d.process_query(&query(400, 600)).unwrap();
    for _ in 0..20 {
        d.process_query(&query(100, 200)).unwrap();
    }
    let view = partitioned_view(&d);
    let ps = view
        .partitions
        .values()
        .find(|p| p.any_materialized())
        .unwrap();
    let mats: Vec<Interval> = ps.materialized().iter().map(|(_, iv)| *iv).collect();
    assert!(
        crate::interval::pairwise_disjoint(&mats),
        "horizontal partitioning must stay disjoint: {mats:?}"
    );
    assert!(crate::interval::covers(&mats, &ps.domain));
}

#[test]
fn nectar_value_model_runs_end_to_end() {
    let cfg = DeepSeaConfig::default()
        .with_value_model(ValueModel::Nectar)
        .with_min_fragment_bytes(1)
        .with_smax(4_000_000_000);
    let mut d = ds(cfg);
    for i in 0..5 {
        let lo = (i * 100) % 700;
        let out = d.process_query(&query(lo, lo + 80)).unwrap();
        assert!(out.elapsed_secs > 0.0);
    }
}

#[test]
fn clock_advances_per_query() {
    let mut d = ds(DeepSeaConfig::default());
    assert_eq!(d.clock(), 0);
    d.process_query(&query(0, 10)).unwrap();
    d.process_query(&query(0, 10)).unwrap();
    assert_eq!(d.clock(), 2);
}

#[test]
fn trace_reflects_pipeline_activity() {
    let mut d = ds(DeepSeaConfig::default().with_min_fragment_bytes(1));
    // First query: no views exist yet, so no matches — but candidates are
    // derived, selected and materialized.
    let first = d.process_query(&query(400, 600)).unwrap();
    let t = first.trace;
    assert!(t.matching.roots > 0, "query exposes match roots");
    assert_eq!(t.matching.hits, 0, "empty registry yields no hits");
    assert!(t.candidates.view_candidates > 0);
    assert_eq!(
        t.candidates.new_views as usize,
        d.registry().len(),
        "every candidate was new on the first query"
    );
    assert!(t.selection.considered > 0);
    // One planned WholeView creation can expand into many written fragments.
    assert!(t.selection.planned_creations > 0);
    assert!(!first.materialized.is_empty());
    assert!(t.execution.query_secs > 0.0);
    assert!(t.materialization.bytes_written > 0);
    assert!(t.materialization.files_written >= first.materialized.len() as u64);
    assert_eq!(t.materialization.creation_secs, first.creation_secs);

    // Second query over the same range: matching now finds the views.
    let second = d.process_query(&query(450, 550)).unwrap();
    let t2 = second.trace;
    assert!(t2.matching.hits > 0, "registered views now match");
    assert!(t2.matching.materialized_hits > 0);
    assert!(t2.matching.views_updated > 0);
    assert!(t2.rewriting.rewrites_costed > 0);
    assert!(
        t2.rewriting.best_cost_secs <= t2.rewriting.base_cost_secs,
        "chosen plan is never costlier than the base plan"
    );
}

#[test]
fn trace_records_evictions_under_pressure() {
    let cfg = DeepSeaConfig::default()
        .with_smax(5_000_000_000)
        .with_min_fragment_bytes(1);
    let mut d = ds(cfg);
    let mut selected = 0u32;
    let mut forced = 0u32;
    let mut evicted_total = 0usize;
    for i in 0..12 {
        let lo = (i * 150) % 800;
        let out = d.process_query(&query(lo, lo + 100)).unwrap();
        selected += out.trace.eviction.selected;
        forced += out.trace.eviction.limit_forced;
        evicted_total += out.evicted.len();
    }
    assert_eq!((selected + forced) as usize, evicted_total);
    assert!(evicted_total > 0, "pool pressure must trigger evictions");
}

#[test]
fn baseline_trace_is_execution_only() {
    let mut d = ds(DeepSeaConfig::default().with_policy(PartitionPolicy::NoMaterialization));
    let out = d.process_query(&query(0, 100)).unwrap();
    let t = out.trace;
    assert!(t.execution.query_secs > 0.0);
    assert_eq!(t.matching, MatchingTrace::default());
    assert_eq!(t.candidates, CandidatesTrace::default());
    assert_eq!(t.selection, SelectionTrace::default());
    assert_eq!(t.materialization, MaterializationTrace::default());
    assert_eq!(t.eviction, EvictionTrace::default());
}

/// Every file currently backing a materialized view or fragment.
fn all_view_files(d: &DeepSea) -> Vec<deepsea_storage::FileId> {
    d.registry()
        .iter()
        .flat_map(|v| {
            v.whole_file.into_iter().chain(
                v.partitions
                    .values()
                    .flat_map(|p| p.fragments.iter().filter_map(|f| f.file)),
            )
        })
        .collect()
}

#[test]
fn lost_fragments_fall_back_to_base_tables_and_quarantine() {
    let mut d = ds(DeepSeaConfig::default().with_min_fragment_bytes(1));
    let mut hive = ds(DeepSeaConfig::default().with_policy(PartitionPolicy::NoMaterialization));
    d.process_query(&query(400, 600)).unwrap();
    let reused = d.process_query(&query(450, 550)).unwrap();
    assert!(reused.used_view.is_some(), "precondition: rewriting in use");

    // Lose every materialized file behind the driver's back — no injector
    // needed; this is the permanent-loss end state.
    for f in all_view_files(&d) {
        d.fs().delete(f);
    }

    let out = d.process_query(&query(450, 550)).unwrap();
    let want = hive.process_query(&query(450, 550)).unwrap();
    assert_eq!(
        out.result.fingerprint(),
        want.result.fingerprint(),
        "fallback must still answer the query correctly"
    );
    assert!(
        out.used_view.is_none(),
        "the broken rewriting was abandoned"
    );
    assert_eq!(out.trace.recovery.base_table_fallbacks, 1);
    assert!(out.trace.recovery.quarantined_views >= 1, "{out:?}");
    assert!(!out.quarantined.is_empty());
    for name in &out.quarantined {
        let vid = d.registry().by_name(name).expect("quarantined view exists");
        let view = d.registry().view(vid);
        assert!(view.is_quarantined());
        assert_eq!(view.pool_bytes(), 0, "quarantine released the pool bytes");
    }
}

#[test]
fn quarantined_views_rematerialize_when_hot() {
    let mut d = ds(DeepSeaConfig::default().with_min_fragment_bytes(1));
    d.process_query(&query(400, 600)).unwrap();
    d.process_query(&query(450, 550)).unwrap();
    for f in all_view_files(&d) {
        d.fs().delete(f);
    }
    let broken = d.process_query(&query(450, 550)).unwrap();
    assert!(broken.trace.recovery.quarantined_views >= 1, "{broken:?}");

    // The workload stays hot on the same shape: candidate registration
    // re-admits the quarantined view, selection re-materializes it, and the
    // rewriting comes back — no manual repair step.
    let mut rematerialized = false;
    let mut reused_again = false;
    for _ in 0..6 {
        let out = d.process_query(&query(450, 550)).unwrap();
        if broken
            .quarantined
            .iter()
            .any(|q| out.materialized.iter().any(|m| m.starts_with(q.as_str())))
        {
            rematerialized = true;
        }
        if out.used_view.is_some() {
            reused_again = true;
        }
    }
    assert!(rematerialized, "hot quarantined views must be rebuilt");
    assert!(reused_again, "rebuilt views must serve rewritings again");
}

#[test]
fn custom_backend_is_used_for_execution() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A SimBackend wrapper that counts executions — proves the driver goes
    /// through the trait object, not the free `execute` function.
    struct CountingBackend {
        inner: SimBackend,
        calls: Arc<AtomicUsize>,
    }

    impl ExecutionBackend for CountingBackend {
        fn execute(
            &self,
            plan: &LogicalPlan,
            catalog: &Catalog,
            fs: &SimFs<Table>,
        ) -> Result<(Table, ExecMetrics), ExecError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.inner.execute(plan, catalog, fs)
        }
        fn elapsed_secs(&self, metrics: &ExecMetrics) -> f64 {
            self.inner.elapsed_secs(metrics)
        }
        fn scan_secs(&self, bytes: u64, block_bytes: u64) -> f64 {
            self.inner.scan_secs(bytes, block_bytes)
        }
        fn write_secs(&self, bytes: u64, files: u64) -> f64 {
            self.inner.write_secs(bytes, files)
        }
        fn cluster(&self) -> &ClusterSim {
            self.inner.cluster()
        }
    }

    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::new(BlockConfig::default(), cluster.weights));
    let calls = Arc::new(AtomicUsize::new(0));
    let backend = Box::new(CountingBackend {
        inner: SimBackend::new(cluster),
        calls: Arc::clone(&calls),
    });
    let mut d = DeepSea::with_backend(
        Arc::new(catalog(2000)),
        fs,
        backend,
        DeepSeaConfig::default().with_min_fragment_bytes(1),
    );
    let out = d.process_query(&query(400, 600)).unwrap();
    assert!(!out.materialized.is_empty());
    // The first materializing query executes the chosen plan plus at least
    // one view computation — all through the trait object.
    assert!(
        calls.load(Ordering::SeqCst) >= 2,
        "driver must execute via the backend: {} calls",
        calls.load(Ordering::SeqCst)
    );
}

#[test]
fn forced_eviction_event_logs_the_policy_phi() {
    use crate::selection::RankedItem;
    use deepsea_obs::{DecisionEvent, ObsConfig};

    let obs = Observer::new(ObsConfig::on());
    let mut d = ds(DeepSeaConfig::default()).with_observer(obs.clone());
    for i in 0..8 {
        d.process_query(&query(i * 40, i * 40 + 100)).unwrap();
    }
    assert!(d.pool_bytes() > 0, "the pool holds something to evict");
    let tnow = d.clock();

    // Rank the pool exactly as stage 7 will: same ALLCAND, same tnow.
    let items: Vec<RankedItem> = d
        .build_allcand(&[], tnow)
        .into_iter()
        .filter(|i| i.materialized)
        .collect();
    let expected = items
        .iter()
        .min_by(|a, b| a.phi.total_cmp(&b.phi))
        .cloned()
        .unwrap();
    let expected_desc = d.describe_item(&expected.kind);
    let expected_runner_up = items
        .iter()
        .filter(|i| i.kind != expected.kind)
        .min_by(|a, b| a.phi.total_cmp(&b.phi))
        .cloned();

    // Force the limit below current usage and enforce it.
    d.config.smax = Some(d.pool_bytes() - 1);
    let before = obs.events_snapshot().len();
    let mut ctx = QueryContext::new(&query(0, 10), tnow);
    d.stage_enforce_limit(&mut ctx);
    assert!(
        !ctx.evicted.is_empty(),
        "limit enforcement evicted something"
    );

    let events = obs.events_snapshot();
    let (victim, breakdown, runner_up, runner_up_phi, forced) = events[before..]
        .iter()
        .find_map(|r| match &r.event {
            DecisionEvent::Eviction {
                victim,
                breakdown,
                runner_up,
                runner_up_phi,
                forced,
            } => Some((
                victim.clone(),
                breakdown.clone(),
                runner_up.clone(),
                *runner_up_phi,
                *forced,
            )),
            _ => None,
        })
        .expect("the eviction logged an audit event");

    // The logged victim and Φ are exactly what the policy ranked by.
    assert_eq!(victim, expected_desc);
    assert_eq!(
        breakdown.phi.to_bits(),
        expected.phi.to_bits(),
        "logged Φ {} != policy Φ {}",
        breakdown.phi,
        expected.phi
    );
    assert!(forced, "stage-7 evictions are Smax-forced");
    assert_eq!(breakdown.size, expected.size);
    // The breakdown's components reconstruct Φ = COST·B/S.
    let rebuilt = breakdown.cost * breakdown.benefit / breakdown.size as f64;
    assert!(
        (breakdown.phi - rebuilt).abs() <= 1e-9 * rebuilt.abs().max(1e-12),
        "Φ {} != COST·B/S {} for {breakdown:?}",
        breakdown.phi,
        rebuilt
    );
    // Runner-up is the second-weakest item still in the pool.
    match expected_runner_up {
        Some(r) => {
            assert_eq!(
                runner_up.as_deref(),
                Some(d.describe_item(&r.kind).as_str())
            );
            assert_eq!(runner_up_phi.unwrap().to_bits(), r.phi.to_bits());
        }
        None => assert!(runner_up.is_none()),
    }
}

#[test]
fn every_eviction_produces_an_audit_event() {
    use deepsea_obs::{DecisionEvent, ObsConfig};

    let obs = Observer::new(ObsConfig::on());
    let mut d = ds(DeepSeaConfig::default().with_smax(5_000_000_000)).with_observer(obs.clone());
    let mut evicted_total = 0usize;
    for i in 0..20 {
        let out = d.process_query(&query(i * 30, i * 30 + 120)).unwrap();
        evicted_total += out.evicted.len();
    }
    assert!(evicted_total > 0, "pool pressure must trigger evictions");

    let events = obs.events_snapshot();
    let evictions: Vec<_> = events
        .iter()
        .filter_map(|r| match &r.event {
            DecisionEvent::Eviction {
                victim, breakdown, ..
            } => Some((victim, breakdown)),
            _ => None,
        })
        .collect();
    assert_eq!(
        evictions.len(),
        evicted_total,
        "one audit event per evicted item"
    );
    for (victim, b) in evictions {
        assert!(b.size > 0, "{victim}: victims were materialized");
        let rebuilt = b.cost * b.benefit / b.size as f64;
        assert!(
            (b.phi - rebuilt).abs() <= 1e-9 * rebuilt.abs().max(1e-12),
            "{victim}: Φ {} != COST·B/S {} ({b:?})",
            b.phi,
            rebuilt
        );
    }
}

#[test]
fn selection_verdicts_cover_every_allcand_item() {
    use deepsea_obs::{DecisionEvent, ObsConfig};

    let obs = Observer::new(ObsConfig::on());
    let mut d = ds(DeepSeaConfig::default()).with_observer(obs.clone());
    let mut considered_total = 0u64;
    for i in 0..6 {
        let out = d.process_query(&query(i * 50, i * 50 + 150)).unwrap();
        considered_total += out.trace.selection.considered as u64;
    }
    let verdicts: Vec<&'static str> = obs
        .events_snapshot()
        .iter()
        .filter_map(|r| match &r.event {
            DecisionEvent::SelectionVerdict { verdict, .. } => Some(*verdict),
            _ => None,
        })
        .collect();
    assert_eq!(verdicts.len() as u64, considered_total);
    assert!(verdicts.contains(&"create"));
    for v in verdicts {
        assert!(matches!(v, "create" | "evict" | "keep" | "reject"));
    }
}
