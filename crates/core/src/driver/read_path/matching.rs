//! Stage 1 of Algorithm 1: compute the possible rewritings against every
//! tracked view (signature matching plus Algorithm-2 fragment covers).
//!
//! Pure reads over a [`ReadView`]: the same code serves the serial commit
//! path and concurrent snapshot readers. The statistics updates the paper
//! folds into this stage (§8.4) are a catalog *mutation* and live on the
//! write path (`write_path::stats`).

use deepsea_engine::plan::LogicalPlan;
use deepsea_engine::signature::{matches, Compensation, Signature};
use deepsea_engine::subquery::all_subplans;
use deepsea_storage::FileId;

use crate::candidates::clamp_to_domain;
use crate::filter_tree::ViewId;
use crate::matching::partition_matching;
use crate::registry::ViewMeta;

use super::super::context::QueryContext;
use super::ReadView;

/// A matched (sub)query/view pair.
pub(crate) struct MatchHit {
    pub(crate) path: Vec<usize>,
    pub(crate) view: ViewId,
    pub(crate) comp: Compensation,
    /// Estimated cost of computing the subquery from scratch.
    pub(crate) sub_cost: f64,
    /// Fragment files to scan if the view is materialized and covers the
    /// needed range.
    pub(crate) access: Option<Access>,
}

pub(crate) struct Access {
    pub(crate) files: Vec<FileId>,
    pub(crate) bytes: u64,
}

impl ReadView<'_> {
    /// Stage 1 — `COMPUTEREWRITINGS`: match every Definition-6-shaped
    /// subplan against the signature buckets of the registry.
    pub(crate) fn compute_rewritings(&self, plan: &LogicalPlan, ctx: &mut QueryContext) {
        let estimator = self.estimator();
        let mut hits = Vec::new();
        let mut roots = 0u32;
        let mut outage_skips = 0u32;
        for (path, sub) in match_roots(plan) {
            roots += 1;
            let Some(qsig) = Signature::of(sub) else {
                continue;
            };
            for &vid in self.registry.lookup_bucket(&qsig) {
                let view = self.registry.view(vid);
                let Some(comp) = matches(&view.sig, &qsig) else {
                    continue;
                };
                let access = self.find_access(vid, &qsig, &mut outage_skips);
                hits.push(MatchHit {
                    path: path.clone(),
                    view: vid,
                    comp,
                    sub_cost: estimator.estimated_secs(sub),
                    access,
                });
            }
        }
        ctx.trace.matching.roots = roots;
        ctx.trace.matching.hits = hits.len() as u32;
        ctx.trace.matching.materialized_hits =
            hits.iter().filter(|h| h.access.is_some()).count() as u32;
        // Degraded-mode routing: every access the matcher refused because
        // all replicas of its backing file were down is a fragment-level
        // patch — the planner answers that region from base tables instead
        // of failing the whole rewriting. Always zero without a cluster.
        ctx.trace.recovery.fragment_fallbacks += outage_skips;
        if outage_skips > 0 {
            self.obs
                .counter_add("deepsea_degraded_accesses_total", None, outage_skips as u64);
        }
        self.obs
            .counter_add("deepsea_match_roots_total", None, roots as u64);
        self.obs
            .counter_add("deepsea_match_hits_total", None, hits.len() as u64);
        self.obs.counter_add(
            "deepsea_match_materialized_hits_total",
            None,
            ctx.trace.matching.materialized_hits as u64,
        );
        ctx.hits = hits;
    }

    /// Cheapest way to read the view for this query: the whole file, or an
    /// Algorithm-2 fragment cover of the needed range on some partition.
    ///
    /// Files whose every replica sits on a down node are routed *around*
    /// rather than read into a guaranteed transient failure: the whole-file
    /// copy is skipped and blocked fragments are dropped from the cover
    /// candidates (a gap in the cover falls back to base tables for that
    /// subquery only). Each refusal bumps `outage_skips`. The probe is
    /// metadata-only (the simulated namenode knows node liveness) and is
    /// always `false` without a cluster, so un-sharded runs are bit-exact.
    fn find_access(&self, vid: ViewId, qsig: &Signature, outage_skips: &mut u32) -> Option<Access> {
        let view = self.registry.view(vid);
        let mut best: Option<Access> = None;
        if let Some(f) = view.whole_file {
            if self.fs.outage_blocked(f) {
                *outage_skips += 1;
            } else {
                best = Some(Access {
                    files: vec![f],
                    bytes: view.stats.size,
                });
            }
        }
        for ps in view.partitions.values() {
            let mut mats = ps.materialized();
            mats.retain(|(fid, _)| {
                let blocked = ps
                    .frag(*fid)
                    .and_then(|f| f.file)
                    .is_some_and(|file| self.fs.outage_blocked(file));
                if blocked {
                    *outage_skips += 1;
                }
                !blocked
            });
            if mats.is_empty() {
                continue;
            }
            let needed = match qsig.range_on_attr(&ps.attr) {
                Some(r) => match clamp_to_domain(r, &ps.domain) {
                    Some(iv) => iv,
                    None => continue, // query range misses the domain
                },
                None => ps.domain,
            };
            let Some(cover) = partition_matching(&needed, &mats) else {
                continue;
            };
            let mut files = Vec::with_capacity(cover.len());
            let mut bytes = 0;
            for fid in &cover {
                let frag = ps
                    .frag(*fid)
                    .expect("invariant: cover returns tracked fragments");
                files.push(
                    frag.file
                        .expect("invariant: cover returns materialized fragments"),
                );
                bytes += frag.size;
            }
            if best.as_ref().is_none_or(|b| bytes < b.bytes) {
                best = Some(Access { files, bytes });
            }
        }
        best
    }

    /// The fraction of the view a partitioned access needs for the given
    /// compensation ranges (1.0 when no applicable range is known).
    pub(crate) fn comp_range_fraction(&self, view: &ViewMeta, comp: &Compensation) -> f64 {
        let mut frac: f64 = 1.0;
        for (col, lo, hi) in &comp.ranges {
            let domain = view
                .partitions
                .values()
                .find(|p| attr_matches(&p.attr, col))
                .map(|p| p.domain)
                .or_else(|| self.attr_domain(&view.plan, col));
            if let Some(d) = domain {
                if let Some(iv) = clamp_to_domain((*lo, *hi), &d) {
                    frac = frac.min(iv.width() as f64 / d.width() as f64);
                }
            }
        }
        frac
    }
}

/// Subplans a view may be matched against: Definition 6 shapes, plus any
/// chain of selections directly above one (the enclosing range selection
/// must take part in matching so it can become fragment-selecting
/// compensation, §8.2).
pub(crate) fn match_roots(plan: &LogicalPlan) -> Vec<(Vec<usize>, &LogicalPlan)> {
    fn is_root(p: &LogicalPlan) -> bool {
        match p {
            LogicalPlan::Join { .. }
            | LogicalPlan::Aggregate { .. }
            | LogicalPlan::Project { .. } => true,
            LogicalPlan::Select { input, .. } => is_root(input),
            _ => false,
        }
    }
    all_subplans(plan)
        .into_iter()
        .filter(|(_, p)| is_root(p))
        .collect()
}

/// Do two attribute names refer to the same column?
///
/// Equal names always match. When exactly one side is qualified
/// (`fact.item_sk` vs `item_sk`) the bare name matches the qualified one's
/// suffix. Two *differently qualified* names never match, even with the same
/// bare suffix — `store.item_sk` and `web.item_sk` are distinct columns.
pub(crate) fn attr_matches(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    match (a.rsplit_once('.'), b.rsplit_once('.')) {
        (Some(_), Some(_)) => false,
        (Some((_, suffix)), None) => suffix == b,
        (None, Some((_, suffix))) => suffix == a,
        (None, None) => false,
    }
}

#[cfg(test)]
mod tests {
    use deepsea_engine::plan::AggExpr;
    use deepsea_engine::plan::LogicalPlan;
    use deepsea_relation::Predicate;

    use super::{attr_matches, match_roots};

    /// `match_roots` must expose joins/aggregates/projections and any chain
    /// of selections stacked on one, but not bare scans or selections over
    /// scans.
    #[test]
    fn match_roots_accepts_nested_selects_over_shapes() {
        let join = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let nested = join
            .clone()
            .select(Predicate::range("a.k", 0, 10))
            .select(Predicate::range("a.k", 2, 8));
        let agg = nested
            .clone()
            .aggregate(vec!["a.k"], vec![AggExpr::count("cnt")]);

        let roots = match_roots(&agg);
        // The aggregate, the double- and single-selected join, and the join.
        assert_eq!(
            roots.len(),
            4,
            "{:?}",
            roots.iter().map(|(p, _)| p).collect::<Vec<_>>()
        );
        assert!(roots.iter().any(|(_, p)| *p == &agg));
        assert!(roots.iter().any(|(_, p)| *p == &nested));
        assert!(roots.iter().any(|(_, p)| *p == &join));
    }

    #[test]
    fn match_roots_rejects_scans_and_selects_over_scans() {
        let plan = LogicalPlan::scan("a").select(Predicate::range("a.k", 0, 10));
        assert!(match_roots(&plan).is_empty());
    }

    #[test]
    fn attr_matches_qualified_and_bare() {
        assert!(attr_matches("fact.item_sk", "fact.item_sk"));
        assert!(attr_matches("item_sk", "item_sk"));
        assert!(attr_matches("fact.item_sk", "item_sk"));
        assert!(attr_matches("item_sk", "fact.item_sk"));
    }

    #[test]
    fn attr_matches_rejects_different_qualifiers() {
        // Same bare suffix under different qualifiers is a *different* column.
        assert!(!attr_matches("store.item_sk", "web.item_sk"));
        assert!(!attr_matches("fact.k", "dim.k"));
        // And plainly different names never match.
        assert!(!attr_matches("item_sk", "order_sk"));
        assert!(!attr_matches("fact.item_sk", "fact.order_sk"));
    }
}
