//! Stage 3 of Algorithm 1: `SELECTREWRITING` — cost every rewriting backed
//! by materialized data and keep the cheapest plan (or the original).

use deepsea_engine::plan::{LogicalPlan, ViewScanInfo};
use deepsea_engine::rewrite::rewrite_with_view;

use super::super::context::QueryContext;
use super::ReadView;

impl ReadView<'_> {
    /// Pick the cheapest plan among the original and every rewriting whose
    /// view access is backed by the pool. Updates `ctx.qbest` /
    /// `ctx.used_view` only when a rewriting wins.
    pub(crate) fn select_rewriting(&self, plan: &LogicalPlan, ctx: &mut QueryContext) {
        let estimator = self.estimator();
        let base_cost = estimator.estimated_secs(plan);
        let mut best_cost = base_cost;
        let mut qbest: Option<LogicalPlan> = None;
        let mut used_view = None;
        let mut costed = 0u32;
        for hit in &ctx.hits {
            let Some(access) = &hit.access else { continue };
            let view = self.registry.view(hit.view);
            let Some(schema) = view.schema.clone() else {
                continue;
            };
            let info = ViewScanInfo {
                view_name: view.name.clone(),
                files: access.files.clone(),
                schema,
            };
            if let Some(rewritten) =
                rewrite_with_view(plan, &hit.path, info, &hit.comp, self.catalog)
            {
                costed += 1;
                let cost = estimator.estimated_secs(&rewritten);
                if cost < best_cost {
                    best_cost = cost;
                    qbest = Some(rewritten);
                    used_view = Some(view.name.clone());
                }
            }
        }
        if let Some(q) = qbest {
            ctx.qbest = q;
        }
        ctx.used_view = used_view;
        ctx.trace.rewriting.rewrites_costed = costed;
        ctx.trace.rewriting.base_cost_secs = base_cost;
        ctx.trace.rewriting.best_cost_secs = best_cost;
    }
}
