//! The **read side** of the driver: everything a query needs to be
//! *answered* — signature matching, rewriting selection, and execution —
//! expressed over an immutable [`ReadView`] instead of the driver itself.
//!
//! The split is what makes a concurrent serving layer possible: a
//! [`ReadView`] borrows only shared state (registry, catalog, file system,
//! backend, config, observer), so the whole read path is `&self` end-to-end
//! and can run against either
//!
//! - the writer's live state (the serial `process_query` path — borrow via
//!   [`super::DeepSea::read_view`]), or
//! - a published [`crate::snapshot::ReadSnapshot`] (the concurrent path —
//!   many clients answering queries against the same frozen epoch while the
//!   single writer commits mutations behind them).
//!
//! Nothing in this module takes `&mut` anything except the per-query
//! [`QueryContext`], which is where all trace state accumulates.

pub(crate) mod matching;
pub(crate) mod rewriting;

use deepsea_engine::catalog::Catalog;
use deepsea_engine::cost::CostEstimator;
use deepsea_engine::exec::{ExecError, ExecMetrics};
use deepsea_engine::plan::LogicalPlan;
use deepsea_engine::ExecutionBackend;
use deepsea_obs::{DecisionEvent, Observer};
use deepsea_relation::Table;
use deepsea_storage::SimFs;

use crate::breaker::{BreakerDecision, BreakerSet, BreakerTransition, NODE_UNKNOWN};
use crate::interval::Interval;
use crate::registry::ViewRegistry;
use crate::stats::LogicalTime;

use super::context::QueryContext;
use super::DeepSea;

pub(crate) use matching::MatchHit;

/// An immutable borrow of everything the read path consults.
///
/// Cheap to construct (six references), impossible to mutate through: the
/// read path sees one consistent catalog state for the duration of a query,
/// whether that state is the writer's live registry or a frozen snapshot.
pub(crate) struct ReadView<'a> {
    pub(crate) registry: &'a ViewRegistry,
    pub(crate) catalog: &'a Catalog,
    pub(crate) fs: &'a SimFs<Table>,
    pub(crate) backend: &'a dyn ExecutionBackend,
    pub(crate) obs: &'a Observer,
    pub(crate) breakers: &'a BreakerSet,
}

impl DeepSea {
    /// Borrow the writer's live state as a read view — the serial path.
    pub(crate) fn read_view(&self) -> ReadView<'_> {
        ReadView {
            registry: &self.registry,
            catalog: &self.catalog,
            fs: &self.fs,
            backend: self.backend.as_ref(),
            obs: &self.obs,
            breakers: &self.breakers,
        }
    }
}

impl<'a> ReadView<'a> {
    /// A cost estimator over this view's catalog, pool, and cluster model.
    pub(crate) fn estimator(&self) -> CostEstimator<'a> {
        CostEstimator::new(self.catalog, self.fs, self.backend.cluster())
    }

    /// The domain `D(A)` of an attribute, from base-table statistics.
    pub(crate) fn attr_domain(&self, plan: &LogicalPlan, col: &str) -> Option<Interval> {
        for t in plan.base_tables() {
            if let Some(s) = self.catalog.column_stats(t, col) {
                return Some(Interval::new(s.min, s.max));
            }
        }
        None
    }

    /// Answer one query against this view: matching, rewriting selection,
    /// then execution of the chosen plan — the full client-facing read path,
    /// with no catalog mutation anywhere.
    ///
    /// If the chosen rewriting fails mid-read (a fragment evicted between
    /// snapshot publication and the actual file read — possible only under
    /// the real-thread server, where file GC is not epoch-deferred), the
    /// query is re-answered from durable base tables: views accelerate,
    /// never gate, an answer. The fallback is reported in the context's
    /// recovery trace, not hidden.
    pub(crate) fn answer(
        &self,
        plan: &LogicalPlan,
        ctx: &mut QueryContext,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        self.compute_rewritings(plan, ctx);
        self.select_rewriting(plan, ctx);
        self.trace_plan_stages(ctx);
        self.breaker_guard(plan, ctx);
        match self.backend.execute(&ctx.qbest, self.catalog, self.fs) {
            Ok((result, metrics)) => {
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                self.breaker_record_success(ctx);
                self.trace_execute_span(ctx, None);
                Ok((result, metrics))
            }
            Err(e) if ctx.used_view.is_some() => {
                self.breaker_record_failure(&e, ctx);
                let (debt_retries, debt_secs) = self.backend.drain_retry_debt();
                ctx.trace.recovery.base_table_fallbacks += 1;
                ctx.used_view = None;
                ctx.qbest = plan.clone();
                let (result, mut metrics) = self.backend.execute(plan, self.catalog, self.fs)?;
                metrics.retries += debt_retries;
                metrics.penalty_secs += debt_secs;
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                self.trace_execute_span(ctx, Some("base_fallback"));
                Ok((result, metrics))
            }
            Err(e) => Err(e),
        }
    }

    /// Emit the pre-execution read-path stages (matching, rewriting) as
    /// zero-width children of the query's span context. Both stages are
    /// costless in the simulator — the spans document *causality* (what was
    /// matched, which rewriting won), not duration.
    fn trace_plan_stages(&self, ctx: &QueryContext) {
        if ctx.span.is_none() {
            return;
        }
        let t = ctx.span_anchor_secs;
        let hits = format!("hits{}", ctx.trace.matching.hits);
        self.obs
            .record_span(ctx.tnow, "match", Some(&hits), ctx.span, t, t);
        self.obs.record_span(
            ctx.tnow,
            "rewrite",
            ctx.used_view.as_deref(),
            ctx.span,
            t,
            t,
        );
    }

    /// Emit the execution span `[anchor, anchor + query_secs]` with the
    /// drained I/O detail (retry-ladder waits, hedge races) as children, plus
    /// zero-width markers for any fallback the execution absorbed.
    ///
    /// The detail buffers are drained even when the query carries no span
    /// context, so a traced neighbour can never inherit this execution's
    /// retries or hedges — the drain is the scoping mechanism.
    pub(crate) fn trace_execute_span(&self, ctx: &QueryContext, fallback: Option<&'static str>) {
        let attempts = self.backend.drain_retry_attempts();
        let hedges = self.fs.drain_hedge_traces();
        if ctx.span.is_none() {
            return;
        }
        let start = ctx.span_anchor_secs;
        let end = start + ctx.query_secs;
        if let Some(marker) = fallback {
            self.obs
                .record_span(ctx.tnow, marker, None, ctx.span, start, start);
        }
        if ctx.trace.recovery.fragment_fallbacks > 0 {
            let label = format!("x{}", ctx.trace.recovery.fragment_fallbacks);
            self.obs.record_span(
                ctx.tnow,
                "fragment_fallback",
                Some(&label),
                ctx.span,
                start,
                start,
            );
        }
        let label = ctx.used_view.as_deref().unwrap_or("base");
        let exec = self
            .obs
            .record_span(ctx.tnow, "execute", Some(label), ctx.span, start, end);
        super::emit_io_detail_spans(self.obs, ctx.tnow, exec, start, end, &attempts, &hedges);
    }

    /// Consult the circuit breakers guarding the rewriting's chosen view.
    /// An open breaker rewrites the decision *before* any I/O is spent: the
    /// query is reset to its base plan (the exact fallback a failure would
    /// have reached), the skip is traced, and no retry budget is burned on a
    /// view a sick node has made useless. Disabled breakers make this a
    /// no-op, keeping every pre-breaker schedule bit-identical.
    pub(crate) fn breaker_guard(&self, plan: &LogicalPlan, ctx: &mut QueryContext) {
        let Some(view) = ctx.used_view.clone() else {
            return;
        };
        let (decision, transitions) = self.breakers.check(&view);
        self.emit_breaker_transitions(ctx.tnow, transitions);
        if !ctx.span.is_none() {
            let verdict = if decision == BreakerDecision::ShortCircuit {
                "short_circuit"
            } else {
                "pass"
            };
            let t = ctx.span_anchor_secs;
            self.obs
                .record_span(ctx.tnow, "breaker_check", Some(verdict), ctx.span, t, t);
        }
        if decision == BreakerDecision::ShortCircuit {
            ctx.trace.recovery.breaker_short_circuits += 1;
            ctx.used_view = None;
            ctx.qbest = plan.clone();
            if self.obs.events_enabled() {
                self.obs
                    .event(ctx.tnow, DecisionEvent::BreakerShortCircuit { view });
            }
        }
    }

    /// Feed a successful view-backed execution to the breakers: closes a
    /// half-open probe, resets failure streaks — unless the read was slow
    /// enough to trip the latency threshold, in which case the success
    /// *counts as a failure* (gray-failure detection; untraceable to a node,
    /// so keyed to [`NODE_UNKNOWN`]).
    pub(crate) fn breaker_record_success(&self, ctx: &QueryContext) {
        let Some(view) = ctx.used_view.as_deref() else {
            return;
        };
        let transitions = if self.breakers.config().trips_on_latency(ctx.query_secs) {
            self.breakers.record_failure(view, NODE_UNKNOWN)
        } else {
            self.breakers.record_success(view)
        };
        self.emit_breaker_transitions(ctx.tnow, transitions);
    }

    /// Feed a failed view-backed execution to the breakers, traced to the
    /// primary replica of the file the error names (the node whose fault the
    /// failure most plausibly is), or [`NODE_UNKNOWN`] when the error names
    /// no file or no cluster is attached.
    pub(crate) fn breaker_record_failure(&self, e: &ExecError, ctx: &QueryContext) {
        let Some(view) = ctx.used_view.as_deref() else {
            return;
        };
        if !self.breakers.config().enabled() {
            return;
        }
        let node = e
            .file()
            .and_then(|f| self.fs.cluster().and_then(|c| c.placement(f)))
            .and_then(|nodes| nodes.first().copied())
            .map_or(NODE_UNKNOWN, |n| n.0);
        let transitions = self.breakers.record_failure(view, node);
        self.emit_breaker_transitions(ctx.tnow, transitions);
    }

    /// Surface breaker state changes as typed decision events (the journal of
    /// record for the tail-chaos replay tests).
    fn emit_breaker_transitions(&self, tnow: LogicalTime, transitions: Vec<BreakerTransition>) {
        if !self.obs.enabled() {
            return;
        }
        for t in transitions {
            self.obs
                .counter_inc("deepsea_breaker_transitions_total", Some(t.to));
            self.obs.event(
                tnow,
                DecisionEvent::BreakerTransition {
                    view: t.view,
                    node: t.node as u64,
                    from: t.from,
                    to: t.to,
                },
            );
        }
    }
}
