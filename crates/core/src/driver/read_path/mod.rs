//! The **read side** of the driver: everything a query needs to be
//! *answered* — signature matching, rewriting selection, and execution —
//! expressed over an immutable [`ReadView`] instead of the driver itself.
//!
//! The split is what makes a concurrent serving layer possible: a
//! [`ReadView`] borrows only shared state (registry, catalog, file system,
//! backend, config, observer), so the whole read path is `&self` end-to-end
//! and can run against either
//!
//! - the writer's live state (the serial `process_query` path — borrow via
//!   [`super::DeepSea::read_view`]), or
//! - a published [`crate::snapshot::ReadSnapshot`] (the concurrent path —
//!   many clients answering queries against the same frozen epoch while the
//!   single writer commits mutations behind them).
//!
//! Nothing in this module takes `&mut` anything except the per-query
//! [`QueryContext`], which is where all trace state accumulates.

pub(crate) mod matching;
pub(crate) mod rewriting;

use deepsea_engine::catalog::Catalog;
use deepsea_engine::cost::CostEstimator;
use deepsea_engine::exec::{ExecError, ExecMetrics};
use deepsea_engine::plan::LogicalPlan;
use deepsea_engine::ExecutionBackend;
use deepsea_obs::Observer;
use deepsea_relation::Table;
use deepsea_storage::SimFs;

use crate::interval::Interval;
use crate::registry::ViewRegistry;

use super::context::QueryContext;
use super::DeepSea;

pub(crate) use matching::MatchHit;

/// An immutable borrow of everything the read path consults.
///
/// Cheap to construct (six references), impossible to mutate through: the
/// read path sees one consistent catalog state for the duration of a query,
/// whether that state is the writer's live registry or a frozen snapshot.
pub(crate) struct ReadView<'a> {
    pub(crate) registry: &'a ViewRegistry,
    pub(crate) catalog: &'a Catalog,
    pub(crate) fs: &'a SimFs<Table>,
    pub(crate) backend: &'a dyn ExecutionBackend,
    pub(crate) obs: &'a Observer,
}

impl DeepSea {
    /// Borrow the writer's live state as a read view — the serial path.
    pub(crate) fn read_view(&self) -> ReadView<'_> {
        ReadView {
            registry: &self.registry,
            catalog: &self.catalog,
            fs: &self.fs,
            backend: self.backend.as_ref(),
            obs: &self.obs,
        }
    }
}

impl<'a> ReadView<'a> {
    /// A cost estimator over this view's catalog, pool, and cluster model.
    pub(crate) fn estimator(&self) -> CostEstimator<'a> {
        CostEstimator::new(self.catalog, self.fs, self.backend.cluster())
    }

    /// The domain `D(A)` of an attribute, from base-table statistics.
    pub(crate) fn attr_domain(&self, plan: &LogicalPlan, col: &str) -> Option<Interval> {
        for t in plan.base_tables() {
            if let Some(s) = self.catalog.column_stats(t, col) {
                return Some(Interval::new(s.min, s.max));
            }
        }
        None
    }

    /// Answer one query against this view: matching, rewriting selection,
    /// then execution of the chosen plan — the full client-facing read path,
    /// with no catalog mutation anywhere.
    ///
    /// If the chosen rewriting fails mid-read (a fragment evicted between
    /// snapshot publication and the actual file read — possible only under
    /// the real-thread server, where file GC is not epoch-deferred), the
    /// query is re-answered from durable base tables: views accelerate,
    /// never gate, an answer. The fallback is reported in the context's
    /// recovery trace, not hidden.
    pub(crate) fn answer(
        &self,
        plan: &LogicalPlan,
        ctx: &mut QueryContext,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        self.compute_rewritings(plan, ctx);
        self.select_rewriting(plan, ctx);
        match self.backend.execute(&ctx.qbest, self.catalog, self.fs) {
            Ok((result, metrics)) => {
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                Ok((result, metrics))
            }
            Err(_) if ctx.used_view.is_some() => {
                let (debt_retries, debt_secs) = self.backend.drain_retry_debt();
                ctx.trace.recovery.base_table_fallbacks += 1;
                ctx.used_view = None;
                ctx.qbest = plan.clone();
                let (result, mut metrics) = self.backend.execute(plan, self.catalog, self.fs)?;
                metrics.retries += debt_retries;
                metrics.penalty_secs += debt_secs;
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                Ok((result, metrics))
            }
            Err(e) => Err(e),
        }
    }
}
