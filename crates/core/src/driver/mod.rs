//! The online driver — Algorithm 1 (`ProcessQuery`) of the paper, as a
//! staged query-lifecycle pipeline split along the read/write axis:
//!
//! - [`read_path`] — the stages that only *consult* catalog state
//!   (signature matching, rewriting selection, execution of the chosen
//!   plan), expressed over an immutable [`read_path::ReadView`] so they can
//!   run against either the writer's live state or a published
//!   [`crate::snapshot::ReadSnapshot`];
//! - [`write_path`] — the stages that *mutate* it (statistics updates,
//!   candidate registration, Φ-selection, materialization, eviction, `Smax`
//!   enforcement, the durable commit point), serialized behind `&mut self`.
//!
//! Each stage communicates through a [`context::QueryContext`] threaded down
//! the pipeline and fills its slice of the per-query [`QueryTrace`] exposed
//! on [`QueryOutcome`]. [`DeepSea::process_query`] (in [`write_path`])
//! remains the single serialized entry point; the concurrent serving layer
//! on top of it lives in [`crate::server`].

pub(crate) mod context;
pub(crate) mod read_path;
pub(crate) mod write_path;

use std::collections::BTreeSet;
use std::sync::Arc;

use deepsea_engine::catalog::Catalog;
use deepsea_engine::cost::CostEstimator;
use deepsea_engine::exec::ExecMetrics;
use deepsea_engine::{ClusterSim, ExecutionBackend, RetryAttempt, SimBackend};
use deepsea_obs::{DecisionEvent, Observer, SpanCtx};
use deepsea_relation::Table;
use deepsea_storage::{BlockConfig, FaultStats, FileId, HedgeTrace, NodeId, PoolAccountant, SimFs};

use crate::config::DeepSeaConfig;
use crate::durability::{
    replay_catalog, CatalogJournal, CatalogRecord, CatalogSnapshot, FsckReport,
};
use crate::registry::ViewRegistry;
use crate::stats::LogicalTime;

pub use context::{
    CandidatesTrace, DurabilityTrace, EvictionTrace, ExecutionTrace, MatchingTrace,
    MaterializationTrace, QueryTrace, RecoveryTrace, RewritingTrace, SelectionTrace,
};

/// The result of processing one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query's result table.
    pub result: Table,
    /// Total simulated elapsed seconds charged to this query
    /// (`query_secs + creation_secs`).
    pub elapsed_secs: f64,
    /// Execution time of the (possibly rewritten) query.
    pub query_secs: f64,
    /// Overhead of materialization / repartitioning performed by this query.
    pub creation_secs: f64,
    /// Name of the view used to answer the query, if any.
    pub used_view: Option<String>,
    /// Human-readable descriptions of views/fragments materialized.
    pub materialized: Vec<String>,
    /// Human-readable descriptions of views/fragments evicted.
    pub evicted: Vec<String>,
    /// Names of views quarantined after permanent I/O failures while this
    /// query was processed.
    pub quarantined: Vec<String>,
    /// Execution metrics of the chosen plan.
    pub metrics: ExecMetrics,
    /// Per-stage counters and simulated costs for this query.
    pub trace: QueryTrace,
}

/// Journal-append debt accumulated since the last drain: retried transient
/// failures and their simulated backoff seconds, charged to the query (or
/// maintenance action) that performed the appends.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct JournalDebt {
    pub(crate) appends: u32,
    pub(crate) retries: u32,
    pub(crate) penalty_secs: f64,
}

/// A DeepSea instance: the materialized-view pool manager wrapped around a
/// catalog, a simulated file system and an execution backend.
pub struct DeepSea {
    pub(crate) config: DeepSeaConfig,
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) fs: Arc<SimFs<Table>>,
    pub(crate) backend: Box<dyn ExecutionBackend>,
    pub(crate) registry: ViewRegistry,
    pub(crate) clock: LogicalTime,
    /// Optional catalog journal; when attached every registry mutation is
    /// recorded at its commit point and the instance can be rebuilt by
    /// [`DeepSea::recover`]. When absent, journaling has zero overhead.
    pub(crate) journal: Option<Arc<CatalogJournal>>,
    /// Mirror ledger of pool usage, maintained at every reserve/release site
    /// so crash recovery can assert the three-way invariant
    /// `pool.used == registry.pool_bytes() == fs.total_bytes()`. Unbounded:
    /// `Smax` is enforced by selection and `enforce_limit`, not here.
    pub(crate) pool: PoolAccountant,
    pub(crate) journal_debt: JournalDebt,
    /// Observability handle. Disabled (the default) it is a no-op; enabled it
    /// only ever *reads* driver state — decisions are identical either way
    /// (enforced by `tests/obs_transparency.rs`).
    pub(crate) obs: Observer,
    /// Cumulative simulated seconds across all processed queries — the span
    /// clock. Advanced unconditionally so attaching an observer mid-run
    /// cannot shift later timestamps.
    pub(crate) sim_elapsed: f64,
    /// Journal records appended since the last installed snapshot; reported
    /// in the `journal_snapshot` audit event.
    pub(crate) appends_since_snapshot: u64,
    /// Fragment files currently unreachable because every replica sits on a
    /// down node. Bookkeeping only — routing consults the cluster map
    /// directly — so quarantined-by-outage fragments can be re-admitted (and
    /// audited) the moment their node returns.
    pub(crate) offline: BTreeSet<FileId>,
    /// Fault counters at the last `observe_query`, so per-kind deltas can be
    /// surfaced as `deepsea_faults_total{kind=...}` without double counting.
    pub(crate) last_fault_stats: FaultStats,
    /// Per-(view, node) circuit breakers guarding the read path. Shared with
    /// every published snapshot (`Arc`): a failure observed by any reader
    /// protects all of them. Deliberately *not* journaled — breaker state is
    /// a health cache, so [`DeepSea::recover`] starts with every breaker
    /// closed (fail-safe).
    pub(crate) breakers: Arc<crate::breaker::BreakerSet>,
    /// Parent span + anchor the *next* `process_query` attaches its
    /// write-path spans under — armed by [`DeepSea::begin_ticket_span`] so
    /// the serving layer can pull a commit into its ticket's causal trace.
    /// Consumed (taken) by `observe_query`; `None` means the query starts
    /// its own trace on the driver's span clock.
    pub(crate) pending_span: Option<(SpanCtx, f64)>,
}

impl DeepSea {
    /// Create an instance with the paper-default cluster and block size.
    pub fn new(catalog: Catalog, config: DeepSeaConfig) -> Self {
        let cluster = ClusterSim::paper_default();
        let fs = SimFs::new(BlockConfig::default(), cluster.weights);
        Self::with_parts(Arc::new(catalog), Arc::new(fs), cluster, config)
    }

    /// Create an instance over existing substrates, simulated by `cluster`.
    pub fn with_parts(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        cluster: ClusterSim,
        config: DeepSeaConfig,
    ) -> Self {
        Self::with_backend(catalog, fs, Box::new(SimBackend::new(cluster)), config)
    }

    /// Create an instance over an arbitrary execution backend — the only
    /// interface through which the driver runs plans and prices I/O.
    pub fn with_backend(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
    ) -> Self {
        let breakers = Arc::new(crate::breaker::BreakerSet::new(config.breaker));
        Self {
            config,
            catalog,
            fs,
            backend,
            registry: ViewRegistry::new(),
            clock: 0,
            journal: None,
            pool: PoolAccountant::unbounded(),
            journal_debt: JournalDebt::default(),
            obs: Observer::off(),
            sim_elapsed: 0.0,
            appends_since_snapshot: 0,
            offline: BTreeSet::new(),
            last_fault_stats: FaultStats::default(),
            breakers,
            pending_span: None,
        }
    }

    /// Builder-style: attach an observability handle. The disabled handle
    /// (`Observer::off()`) keeps every instrumentation site a no-op.
    ///
    /// When the handle records spans, the storage/engine detail buffers
    /// (hedge-race and retry-ladder traces) are switched on so the driver
    /// can convert them into causal spans. The buffers are record-only:
    /// enabling them is bit-transparent to every decision and cost, pinned
    /// by tests in `deepsea-storage` and `deepsea-engine`.
    pub fn with_observer(mut self, obs: Observer) -> Self {
        let trace = obs.spans_enabled();
        self.fs.set_io_trace(trace);
        self.backend.set_attempt_trace(trace);
        self.obs = obs;
        self
    }

    /// Arm the causal parent for the next `process_query`: its write-path
    /// spans (commit, materialize, journal) are attached under `parent`,
    /// anchored at `anchor_secs` on the caller's timeline. One-shot —
    /// consumed by the next processed query.
    pub fn begin_ticket_span(&mut self, parent: SpanCtx, anchor_secs: f64) {
        self.pending_span = Some((parent, anchor_secs));
    }

    /// The attached observability handle.
    pub fn observer(&self) -> &Observer {
        &self.obs
    }

    /// Builder-style: attach a catalog journal. Every registry mutation from
    /// here on is recorded at its commit point; `DeepSea::recover` can then
    /// rebuild this instance from the journal after a crash.
    pub fn with_journal(mut self, journal: Arc<CatalogJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Rebuild an instance from its catalog journal after a crash: load the
    /// latest snapshot, replay the record suffix, then run an **fsck sweep**
    /// reconciling the recovered catalog against the file system — orphaned
    /// files (created but never recorded) are deleted, catalog entries whose
    /// backing files are missing or corrupt are quarantined, and the pool
    /// ledger is re-derived and asserted consistent. Finally a recovery
    /// checkpoint (full snapshot) is installed so a second crash recovers
    /// from the reconciled state — which is what makes recovery idempotent.
    pub fn recover(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
        journal: Arc<CatalogJournal>,
    ) -> (Self, FsckReport) {
        let (snapshot, records) = journal.replay();
        let replayed_records = records.len() as u64;
        let snapshot_lsn = snapshot.as_ref().map(|(lsn, _)| *lsn);
        let (registry, clock) = replay_catalog(snapshot.map(|(_, s)| s), &records);

        let mut ds = Self::with_backend(catalog, fs, backend, config).with_journal(journal);
        ds.registry = registry;
        ds.clock = clock;

        // Restore the cluster placement map from the replayed record suffix
        // (files covered by the snapshot keep their placement in the
        // surviving namenode, i.e. the SimFs cluster map). Idempotent:
        // re-placing the same list is a no-op.
        if ds.fs.cluster().is_some() {
            for (_, record) in &records {
                if let CatalogRecord::ViewMaterialized { file, nodes, .. }
                | CatalogRecord::FragmentMaterialized { file, nodes, .. } = record
                {
                    let nodes: Vec<NodeId> = nodes.iter().map(|n| NodeId(*n)).collect();
                    ds.fs.place(*file, &nodes);
                }
            }
        }

        let mut report = ds.fsck();
        report.replayed_records = replayed_records;
        report.snapshot_lsn = snapshot_lsn;

        // Compact the journal to the reconciled post-fsck state so fsck's own
        // quarantines (and any pre-crash record tail) can never be re-applied
        // against a file system that has since moved on.
        if let Some(journal) = &ds.journal {
            journal.install_snapshot(CatalogSnapshot {
                registry: ds.registry.clone(),
                clock: ds.clock,
            });
        }
        (ds, report)
    }

    /// [`DeepSea::recover`] with an observer attached from the start: the
    /// fsck outcome is recorded as counters and an `fsck` audit event.
    pub fn recover_with_observer(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
        journal: Arc<CatalogJournal>,
        obs: Observer,
    ) -> (Self, FsckReport) {
        let (ds, report) = Self::recover(catalog, fs, backend, config, journal);
        let ds = ds.with_observer(obs);
        ds.observe_fsck(&report);
        (ds, report)
    }

    /// Record a completed fsck sweep. Pure observation of the report.
    fn observe_fsck(&self, report: &FsckReport) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.counter_add(
            "deepsea_fsck_replayed_records_total",
            None,
            report.replayed_records,
        );
        self.obs.counter_add(
            "deepsea_fsck_orphan_files_total",
            None,
            report.orphan_files as u64,
        );
        self.obs.counter_add(
            "deepsea_fsck_quarantined_views_total",
            None,
            report.quarantined_views as u64,
        );
        self.obs.event(
            self.clock,
            DecisionEvent::Fsck {
                missing_files: report.missing_files as u64,
                corrupt_files: report.corrupt_files as u64,
                orphan_files: report.orphan_files as u64,
                quarantined_views: report.quarantined_views as u64,
                replayed_records: report.replayed_records,
            },
        );
    }

    /// The configuration in force.
    pub fn config(&self) -> &DeepSeaConfig {
        &self.config
    }

    /// The statistics registry (views, partitions, fragments).
    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// Current logical time (number of queries processed).
    pub fn clock(&self) -> LogicalTime {
        self.clock
    }

    /// Simulated bytes currently held by the pool.
    pub fn pool_bytes(&self) -> u64 {
        self.registry.pool_bytes()
    }

    /// The underlying simulated file system.
    pub fn fs(&self) -> &SimFs<Table> {
        &self.fs
    }

    /// The attached catalog journal, if any.
    pub fn journal(&self) -> Option<&Arc<CatalogJournal>> {
        self.journal.as_ref()
    }

    /// The mirror pool ledger (used bytes + over-release violations).
    pub fn pool_accountant(&self) -> &PoolAccountant {
        &self.pool
    }

    /// The cluster model of the execution backend.
    pub fn cluster(&self) -> &ClusterSim {
        self.backend.cluster()
    }

    /// Fragment files currently unreachable due to a node outage (temporarily
    /// quarantined at fragment granularity, auto re-admitted on node return).
    pub fn offline_fragments(&self) -> Vec<FileId> {
        self.offline.iter().copied().collect()
    }

    /// The read-path circuit breakers (shared with every published snapshot).
    pub fn breakers(&self) -> &crate::breaker::BreakerSet {
        &self.breakers
    }

    /// A cost estimator over the backend's cluster model.
    pub(crate) fn estimator(&self) -> CostEstimator<'_> {
        CostEstimator::new(&self.catalog, &self.fs, self.backend.cluster())
    }

    /// Record the per-query metrics and spans from the finished outcome.
    /// Reads only — no decision depends on anything done here.
    pub(crate) fn observe_query(&mut self, outcome: &QueryOutcome) {
        let start = self.sim_elapsed;
        // Advance the span clock even when disabled, so enabling observation
        // mid-run cannot shift later span timestamps. The armed ticket span
        // is one-shot either way.
        self.sim_elapsed += outcome.elapsed_secs;
        let pending = self.pending_span.take();
        if !self.obs.enabled() {
            return;
        }
        let tnow = self.clock;
        self.obs.counter_inc("deepsea_queries_total", None);
        self.obs
            .observe("deepsea_query_secs", None, outcome.query_secs);
        if outcome.creation_secs > 0.0 {
            self.obs
                .observe("deepsea_creation_secs", None, outcome.creation_secs);
        }
        // Scope the I/O detail buffers to this query regardless of what gets
        // emitted: an undrained buffer would misattribute this query's
        // retries/hedges to a later traced query.
        let attempts = self.backend.drain_retry_attempts();
        let hedges = self.fs.drain_hedge_traces();
        match pending {
            // A serving-layer commit: attach the write path to its ticket's
            // trace. Only the writer-occupying work (creation + journal) is
            // spanned — the canonical re-execution's cost is client-invisible
            // (the read already carries the execute spans).
            Some((parent, anchor)) => {
                let end = anchor + outcome.creation_secs;
                let commit = self.obs.record_span(
                    tnow,
                    "commit",
                    outcome.used_view.as_deref(),
                    parent,
                    anchor,
                    end,
                );
                let journal_secs = outcome.trace.durability.journal_penalty_secs;
                let mat_end = end - journal_secs;
                if mat_end > anchor {
                    self.obs
                        .record_span(tnow, "materialize", None, commit, anchor, mat_end);
                }
                if journal_secs > 0.0 {
                    self.obs
                        .record_span(tnow, "journal", None, commit, mat_end, end);
                }
            }
            // The serial path: the query roots its own trace on the driver's
            // span clock, with execute/materialize (and the drained I/O
            // detail) as causal children.
            None => {
                let root = self.obs.record_span(
                    tnow,
                    "query",
                    None,
                    SpanCtx::root(tnow),
                    start,
                    start + outcome.elapsed_secs,
                );
                let exec = self.obs.record_span(
                    tnow,
                    "execute",
                    outcome.used_view.as_deref(),
                    root,
                    start,
                    start + outcome.query_secs,
                );
                emit_io_detail_spans(
                    &self.obs,
                    tnow,
                    exec,
                    start,
                    start + outcome.query_secs,
                    &attempts,
                    &hedges,
                );
                if outcome.creation_secs > 0.0 {
                    self.obs.record_span(
                        tnow,
                        "materialize",
                        None,
                        root,
                        start + outcome.query_secs,
                        start + outcome.elapsed_secs,
                    );
                }
            }
        }
        if let Some(view) = &outcome.used_view {
            self.obs.counter_inc("deepsea_view_hits_total", Some(view));
        }
        self.obs.counter_add(
            "deepsea_exec_bytes_read_total",
            outcome.used_view.as_deref(),
            outcome.metrics.bytes_read,
        );
        self.obs.counter_add(
            "deepsea_exec_map_tasks_total",
            None,
            outcome.metrics.map_tasks,
        );
        self.obs.counter_add(
            "deepsea_evictions_total",
            None,
            outcome.evicted.len() as u64,
        );
        self.obs.counter_add(
            "deepsea_quarantines_total",
            None,
            outcome.quarantined.len() as u64,
        );
        self.obs
            .gauge_set("deepsea_pool_bytes", None, self.pool_bytes() as f64);
        self.observe_fault_deltas();
    }

    /// Surface the file system's fault counters as per-kind
    /// `deepsea_faults_total{kind=...}` deltas since the last query. Reads
    /// only — the counters are cumulative on the FS side.
    fn observe_fault_deltas(&mut self) {
        let now = self.fs.fault_stats();
        let last = self.last_fault_stats;
        self.last_fault_stats = now;
        let kinds: [(&str, u64, u64); 12] = [
            ("transient_read", now.transient_reads, last.transient_reads),
            (
                "permanent_loss",
                now.permanent_losses,
                last.permanent_losses,
            ),
            (
                "transient_write",
                now.transient_writes,
                last.transient_writes,
            ),
            ("latency_spike", now.latency_spikes, last.latency_spikes),
            ("corruption", now.corruptions, last.corruptions),
            ("node_down", now.node_downs, last.node_downs),
            ("node_up", now.node_ups, last.node_ups),
            ("node_kill", now.node_kills, last.node_kills),
            ("node_slow", now.node_slows, last.node_slows),
            ("hedge_issued", now.hedges_issued, last.hedges_issued),
            ("hedge_won", now.hedges_won, last.hedges_won),
            (
                "hedge_cancelled",
                now.hedges_cancelled,
                last.hedges_cancelled,
            ),
        ];
        for (kind, now, last) in kinds {
            let delta = now.saturating_sub(last);
            if delta > 0 {
                self.obs
                    .counter_add("deepsea_faults_total", Some(kind), delta);
            }
        }
    }
}

/// Lay the drained I/O detail — retry-ladder waits and hedge races — as
/// children of an `execute` span covering `[start, end]`.
///
/// The simulator prices an execution as one analytic total, so the detail
/// offsets are deterministic *reconstructions*: events are laid end to end
/// from the execute start (retries first, then each hedge race), clamped so
/// a child never escapes its parent. Within one hedge race both arms start
/// at the primary read; the replica arm is issued after the hedge threshold
/// and both arms end when the winner returns (the loser is cancelled at
/// that instant), so winner/loser and the node each arm read from are
/// visible on the trace.
pub(crate) fn emit_io_detail_spans(
    obs: &Observer,
    tnow: LogicalTime,
    exec: SpanCtx,
    start: f64,
    end: f64,
    attempts: &[RetryAttempt],
    hedges: &[HedgeTrace],
) {
    if exec.is_none() || (attempts.is_empty() && hedges.is_empty()) {
        return;
    }
    let clamp = |v: f64| v.min(end).max(start);
    let mut cursor = start;
    for a in attempts {
        let label = match a.file {
            Some(f) => format!("attempt{} file{}", a.attempt, f.0),
            None => format!("attempt{}", a.attempt),
        };
        obs.record_span(
            tnow,
            "retry_wait",
            Some(&label),
            exec,
            clamp(cursor),
            clamp(cursor + a.backoff_secs),
        );
        cursor += a.backoff_secs;
    }
    for h in hedges {
        let total = if h.winner_replica {
            h.replica_secs
        } else {
            h.primary_secs
        };
        let primary_label = format!(
            "node{} {}",
            h.primary.0,
            if h.winner_replica { "cancelled" } else { "win" }
        );
        let replica_label = format!(
            "node{} {}",
            h.replica.0,
            if h.winner_replica { "win" } else { "cancelled" }
        );
        obs.record_span(
            tnow,
            "hedge_primary",
            Some(&primary_label),
            exec,
            clamp(cursor),
            clamp(cursor + total),
        );
        obs.record_span(
            tnow,
            "hedge_replica",
            Some(&replica_label),
            exec,
            clamp(cursor + h.threshold_secs.min(total)),
            clamp(cursor + total),
        );
        cursor += total;
    }
}

#[cfg(test)]
mod tests;
