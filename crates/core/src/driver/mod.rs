//! The online driver — Algorithm 1 (`ProcessQuery`) of the paper, as a
//! staged query-lifecycle pipeline split along the read/write axis:
//!
//! - [`read_path`] — the stages that only *consult* catalog state
//!   (signature matching, rewriting selection, execution of the chosen
//!   plan), expressed over an immutable [`read_path::ReadView`] so they can
//!   run against either the writer's live state or a published
//!   [`crate::snapshot::ReadSnapshot`];
//! - [`write_path`] — the stages that *mutate* it (statistics updates,
//!   candidate registration, Φ-selection, materialization, eviction, `Smax`
//!   enforcement, the durable commit point), serialized behind `&mut self`.
//!
//! Each stage communicates through a [`context::QueryContext`] threaded down
//! the pipeline and fills its slice of the per-query [`QueryTrace`] exposed
//! on [`QueryOutcome`]. [`DeepSea::process_query`] (in [`write_path`])
//! remains the single serialized entry point; the concurrent serving layer
//! on top of it lives in [`crate::server`].

pub(crate) mod context;
pub(crate) mod read_path;
pub(crate) mod write_path;

use std::collections::BTreeSet;
use std::sync::Arc;

use deepsea_engine::catalog::Catalog;
use deepsea_engine::cost::CostEstimator;
use deepsea_engine::exec::ExecMetrics;
use deepsea_engine::{ClusterSim, ExecutionBackend, SimBackend};
use deepsea_obs::{DecisionEvent, Observer};
use deepsea_relation::Table;
use deepsea_storage::{BlockConfig, FaultStats, FileId, NodeId, PoolAccountant, SimFs};

use crate::config::DeepSeaConfig;
use crate::durability::{
    replay_catalog, CatalogJournal, CatalogRecord, CatalogSnapshot, FsckReport,
};
use crate::registry::ViewRegistry;
use crate::stats::LogicalTime;

pub use context::{
    CandidatesTrace, DurabilityTrace, EvictionTrace, ExecutionTrace, MatchingTrace,
    MaterializationTrace, QueryTrace, RecoveryTrace, RewritingTrace, SelectionTrace,
};

/// The result of processing one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query's result table.
    pub result: Table,
    /// Total simulated elapsed seconds charged to this query
    /// (`query_secs + creation_secs`).
    pub elapsed_secs: f64,
    /// Execution time of the (possibly rewritten) query.
    pub query_secs: f64,
    /// Overhead of materialization / repartitioning performed by this query.
    pub creation_secs: f64,
    /// Name of the view used to answer the query, if any.
    pub used_view: Option<String>,
    /// Human-readable descriptions of views/fragments materialized.
    pub materialized: Vec<String>,
    /// Human-readable descriptions of views/fragments evicted.
    pub evicted: Vec<String>,
    /// Names of views quarantined after permanent I/O failures while this
    /// query was processed.
    pub quarantined: Vec<String>,
    /// Execution metrics of the chosen plan.
    pub metrics: ExecMetrics,
    /// Per-stage counters and simulated costs for this query.
    pub trace: QueryTrace,
}

/// Journal-append debt accumulated since the last drain: retried transient
/// failures and their simulated backoff seconds, charged to the query (or
/// maintenance action) that performed the appends.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct JournalDebt {
    pub(crate) appends: u32,
    pub(crate) retries: u32,
    pub(crate) penalty_secs: f64,
}

/// A DeepSea instance: the materialized-view pool manager wrapped around a
/// catalog, a simulated file system and an execution backend.
pub struct DeepSea {
    pub(crate) config: DeepSeaConfig,
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) fs: Arc<SimFs<Table>>,
    pub(crate) backend: Box<dyn ExecutionBackend>,
    pub(crate) registry: ViewRegistry,
    pub(crate) clock: LogicalTime,
    /// Optional catalog journal; when attached every registry mutation is
    /// recorded at its commit point and the instance can be rebuilt by
    /// [`DeepSea::recover`]. When absent, journaling has zero overhead.
    pub(crate) journal: Option<Arc<CatalogJournal>>,
    /// Mirror ledger of pool usage, maintained at every reserve/release site
    /// so crash recovery can assert the three-way invariant
    /// `pool.used == registry.pool_bytes() == fs.total_bytes()`. Unbounded:
    /// `Smax` is enforced by selection and `enforce_limit`, not here.
    pub(crate) pool: PoolAccountant,
    pub(crate) journal_debt: JournalDebt,
    /// Observability handle. Disabled (the default) it is a no-op; enabled it
    /// only ever *reads* driver state — decisions are identical either way
    /// (enforced by `tests/obs_transparency.rs`).
    pub(crate) obs: Observer,
    /// Cumulative simulated seconds across all processed queries — the span
    /// clock. Advanced unconditionally so attaching an observer mid-run
    /// cannot shift later timestamps.
    pub(crate) sim_elapsed: f64,
    /// Journal records appended since the last installed snapshot; reported
    /// in the `journal_snapshot` audit event.
    pub(crate) appends_since_snapshot: u64,
    /// Fragment files currently unreachable because every replica sits on a
    /// down node. Bookkeeping only — routing consults the cluster map
    /// directly — so quarantined-by-outage fragments can be re-admitted (and
    /// audited) the moment their node returns.
    pub(crate) offline: BTreeSet<FileId>,
    /// Fault counters at the last `observe_query`, so per-kind deltas can be
    /// surfaced as `deepsea_faults_total{kind=...}` without double counting.
    pub(crate) last_fault_stats: FaultStats,
    /// Per-(view, node) circuit breakers guarding the read path. Shared with
    /// every published snapshot (`Arc`): a failure observed by any reader
    /// protects all of them. Deliberately *not* journaled — breaker state is
    /// a health cache, so [`DeepSea::recover`] starts with every breaker
    /// closed (fail-safe).
    pub(crate) breakers: Arc<crate::breaker::BreakerSet>,
}

impl DeepSea {
    /// Create an instance with the paper-default cluster and block size.
    pub fn new(catalog: Catalog, config: DeepSeaConfig) -> Self {
        let cluster = ClusterSim::paper_default();
        let fs = SimFs::new(BlockConfig::default(), cluster.weights);
        Self::with_parts(Arc::new(catalog), Arc::new(fs), cluster, config)
    }

    /// Create an instance over existing substrates, simulated by `cluster`.
    pub fn with_parts(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        cluster: ClusterSim,
        config: DeepSeaConfig,
    ) -> Self {
        Self::with_backend(catalog, fs, Box::new(SimBackend::new(cluster)), config)
    }

    /// Create an instance over an arbitrary execution backend — the only
    /// interface through which the driver runs plans and prices I/O.
    pub fn with_backend(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
    ) -> Self {
        let breakers = Arc::new(crate::breaker::BreakerSet::new(config.breaker));
        Self {
            config,
            catalog,
            fs,
            backend,
            registry: ViewRegistry::new(),
            clock: 0,
            journal: None,
            pool: PoolAccountant::unbounded(),
            journal_debt: JournalDebt::default(),
            obs: Observer::off(),
            sim_elapsed: 0.0,
            appends_since_snapshot: 0,
            offline: BTreeSet::new(),
            last_fault_stats: FaultStats::default(),
            breakers,
        }
    }

    /// Builder-style: attach an observability handle. The disabled handle
    /// (`Observer::off()`) keeps every instrumentation site a no-op.
    pub fn with_observer(mut self, obs: Observer) -> Self {
        self.obs = obs;
        self
    }

    /// The attached observability handle.
    pub fn observer(&self) -> &Observer {
        &self.obs
    }

    /// Builder-style: attach a catalog journal. Every registry mutation from
    /// here on is recorded at its commit point; `DeepSea::recover` can then
    /// rebuild this instance from the journal after a crash.
    pub fn with_journal(mut self, journal: Arc<CatalogJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Rebuild an instance from its catalog journal after a crash: load the
    /// latest snapshot, replay the record suffix, then run an **fsck sweep**
    /// reconciling the recovered catalog against the file system — orphaned
    /// files (created but never recorded) are deleted, catalog entries whose
    /// backing files are missing or corrupt are quarantined, and the pool
    /// ledger is re-derived and asserted consistent. Finally a recovery
    /// checkpoint (full snapshot) is installed so a second crash recovers
    /// from the reconciled state — which is what makes recovery idempotent.
    pub fn recover(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
        journal: Arc<CatalogJournal>,
    ) -> (Self, FsckReport) {
        let (snapshot, records) = journal.replay();
        let replayed_records = records.len() as u64;
        let snapshot_lsn = snapshot.as_ref().map(|(lsn, _)| *lsn);
        let (registry, clock) = replay_catalog(snapshot.map(|(_, s)| s), &records);

        let mut ds = Self::with_backend(catalog, fs, backend, config).with_journal(journal);
        ds.registry = registry;
        ds.clock = clock;

        // Restore the cluster placement map from the replayed record suffix
        // (files covered by the snapshot keep their placement in the
        // surviving namenode, i.e. the SimFs cluster map). Idempotent:
        // re-placing the same list is a no-op.
        if ds.fs.cluster().is_some() {
            for (_, record) in &records {
                if let CatalogRecord::ViewMaterialized { file, nodes, .. }
                | CatalogRecord::FragmentMaterialized { file, nodes, .. } = record
                {
                    let nodes: Vec<NodeId> = nodes.iter().map(|n| NodeId(*n)).collect();
                    ds.fs.place(*file, &nodes);
                }
            }
        }

        let mut report = ds.fsck();
        report.replayed_records = replayed_records;
        report.snapshot_lsn = snapshot_lsn;

        // Compact the journal to the reconciled post-fsck state so fsck's own
        // quarantines (and any pre-crash record tail) can never be re-applied
        // against a file system that has since moved on.
        if let Some(journal) = &ds.journal {
            journal.install_snapshot(CatalogSnapshot {
                registry: ds.registry.clone(),
                clock: ds.clock,
            });
        }
        (ds, report)
    }

    /// [`DeepSea::recover`] with an observer attached from the start: the
    /// fsck outcome is recorded as counters and an `fsck` audit event.
    pub fn recover_with_observer(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
        journal: Arc<CatalogJournal>,
        obs: Observer,
    ) -> (Self, FsckReport) {
        let (mut ds, report) = Self::recover(catalog, fs, backend, config, journal);
        ds.obs = obs;
        ds.observe_fsck(&report);
        (ds, report)
    }

    /// Record a completed fsck sweep. Pure observation of the report.
    fn observe_fsck(&self, report: &FsckReport) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.counter_add(
            "deepsea_fsck_replayed_records_total",
            None,
            report.replayed_records,
        );
        self.obs.counter_add(
            "deepsea_fsck_orphan_files_total",
            None,
            report.orphan_files as u64,
        );
        self.obs.counter_add(
            "deepsea_fsck_quarantined_views_total",
            None,
            report.quarantined_views as u64,
        );
        self.obs.event(
            self.clock,
            DecisionEvent::Fsck {
                missing_files: report.missing_files as u64,
                corrupt_files: report.corrupt_files as u64,
                orphan_files: report.orphan_files as u64,
                quarantined_views: report.quarantined_views as u64,
                replayed_records: report.replayed_records,
            },
        );
    }

    /// The configuration in force.
    pub fn config(&self) -> &DeepSeaConfig {
        &self.config
    }

    /// The statistics registry (views, partitions, fragments).
    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// Current logical time (number of queries processed).
    pub fn clock(&self) -> LogicalTime {
        self.clock
    }

    /// Simulated bytes currently held by the pool.
    pub fn pool_bytes(&self) -> u64 {
        self.registry.pool_bytes()
    }

    /// The underlying simulated file system.
    pub fn fs(&self) -> &SimFs<Table> {
        &self.fs
    }

    /// The attached catalog journal, if any.
    pub fn journal(&self) -> Option<&Arc<CatalogJournal>> {
        self.journal.as_ref()
    }

    /// The mirror pool ledger (used bytes + over-release violations).
    pub fn pool_accountant(&self) -> &PoolAccountant {
        &self.pool
    }

    /// The cluster model of the execution backend.
    pub fn cluster(&self) -> &ClusterSim {
        self.backend.cluster()
    }

    /// Fragment files currently unreachable due to a node outage (temporarily
    /// quarantined at fragment granularity, auto re-admitted on node return).
    pub fn offline_fragments(&self) -> Vec<FileId> {
        self.offline.iter().copied().collect()
    }

    /// The read-path circuit breakers (shared with every published snapshot).
    pub fn breakers(&self) -> &crate::breaker::BreakerSet {
        &self.breakers
    }

    /// A cost estimator over the backend's cluster model.
    pub(crate) fn estimator(&self) -> CostEstimator<'_> {
        CostEstimator::new(&self.catalog, &self.fs, self.backend.cluster())
    }

    /// Record the per-query metrics and spans from the finished outcome.
    /// Reads only — no decision depends on anything done here.
    pub(crate) fn observe_query(&mut self, outcome: &QueryOutcome) {
        let start = self.sim_elapsed;
        // Advance the span clock even when disabled, so enabling observation
        // mid-run cannot shift later span timestamps.
        self.sim_elapsed += outcome.elapsed_secs;
        if !self.obs.enabled() {
            return;
        }
        let tnow = self.clock;
        self.obs.counter_inc("deepsea_queries_total", None);
        self.obs
            .observe("deepsea_query_secs", None, outcome.query_secs);
        self.obs.span(
            tnow,
            "execute",
            outcome.used_view.as_deref(),
            start,
            start + outcome.query_secs,
        );
        if outcome.creation_secs > 0.0 {
            self.obs
                .observe("deepsea_creation_secs", None, outcome.creation_secs);
            self.obs.span(
                tnow,
                "materialize",
                None,
                start + outcome.query_secs,
                start + outcome.elapsed_secs,
            );
        }
        if let Some(view) = &outcome.used_view {
            self.obs.counter_inc("deepsea_view_hits_total", Some(view));
        }
        self.obs.counter_add(
            "deepsea_exec_bytes_read_total",
            outcome.used_view.as_deref(),
            outcome.metrics.bytes_read,
        );
        self.obs.counter_add(
            "deepsea_exec_map_tasks_total",
            None,
            outcome.metrics.map_tasks,
        );
        self.obs.counter_add(
            "deepsea_evictions_total",
            None,
            outcome.evicted.len() as u64,
        );
        self.obs.counter_add(
            "deepsea_quarantines_total",
            None,
            outcome.quarantined.len() as u64,
        );
        self.obs
            .gauge_set("deepsea_pool_bytes", None, self.pool_bytes() as f64);
        self.observe_fault_deltas();
    }

    /// Surface the file system's fault counters as per-kind
    /// `deepsea_faults_total{kind=...}` deltas since the last query. Reads
    /// only — the counters are cumulative on the FS side.
    fn observe_fault_deltas(&mut self) {
        let now = self.fs.fault_stats();
        let last = self.last_fault_stats;
        self.last_fault_stats = now;
        let kinds: [(&str, u64, u64); 12] = [
            ("transient_read", now.transient_reads, last.transient_reads),
            (
                "permanent_loss",
                now.permanent_losses,
                last.permanent_losses,
            ),
            (
                "transient_write",
                now.transient_writes,
                last.transient_writes,
            ),
            ("latency_spike", now.latency_spikes, last.latency_spikes),
            ("corruption", now.corruptions, last.corruptions),
            ("node_down", now.node_downs, last.node_downs),
            ("node_up", now.node_ups, last.node_ups),
            ("node_kill", now.node_kills, last.node_kills),
            ("node_slow", now.node_slows, last.node_slows),
            ("hedge_issued", now.hedges_issued, last.hedges_issued),
            ("hedge_won", now.hedges_won, last.hedges_won),
            (
                "hedge_cancelled",
                now.hedges_cancelled,
                last.hedges_cancelled,
            ),
        ];
        for (kind, now, last) in kinds {
            let delta = now.saturating_sub(last);
            if delta > 0 {
                self.obs
                    .counter_add("deepsea_faults_total", Some(kind), delta);
            }
        }
    }
}

#[cfg(test)]
mod tests;
