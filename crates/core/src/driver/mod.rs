//! The online driver — Algorithm 1 (`ProcessQuery`) of the paper, as a
//! staged query-lifecycle pipeline.
//!
//! Each stage lives in its own submodule and communicates through a
//! [`context::QueryContext`] threaded down the pipeline:
//!
//! 1. [`matching`] — compute the possible **rewritings** against every
//!    tracked view (materialized or not) via signature matching and, for
//!    partitioned views, Algorithm-2 fragment covers;
//! 2. [`matching`] — **update statistics**: every view/fragment that could
//!    answer the query records a (potential) benefit event;
//! 3. [`rewriting`] — pick the **cheapest rewriting** among those backed by
//!    the pool (or the original plan);
//! 4. [`candidates`] — derive **view candidates** (Definition 6) and
//!    **partition candidates** (Definition 7) from the chosen plan;
//! 5. [`selection`] — admission filters (`COST ≤ B`), Φ-ranked greedy
//!    knapsack under `Smax` — deciding what to materialize and what to evict;
//! 6. execution via the pluggable [`ExecutionBackend`], then [`evict`] and
//!    [`materialize`] apply the chosen configuration as a by-product (only
//!    the write/repartition overhead is charged to the query, §7.2);
//! 7. [`evict`] — enforce `Smax` with measured sizes.
//!
//! Every stage also fills its slice of the per-query [`QueryTrace`] exposed
//! on [`QueryOutcome`].

pub(crate) mod candidates;
pub(crate) mod context;
pub(crate) mod evict;
pub(crate) mod matching;
pub(crate) mod materialize;
pub(crate) mod recover;
pub(crate) mod rewriting;
pub(crate) mod selection;

use std::sync::Arc;

use deepsea_engine::catalog::Catalog;
use deepsea_engine::cost::CostEstimator;
use deepsea_engine::exec::{ExecError, ExecMetrics};
use deepsea_engine::plan::LogicalPlan;
use deepsea_engine::{ClusterSim, ExecutionBackend, SimBackend};
use deepsea_obs::{DecisionEvent, Observer};
use deepsea_relation::Table;
use deepsea_storage::{BlockConfig, PoolAccountant, SimFs};

use crate::config::DeepSeaConfig;
use crate::durability::{
    replay_catalog, stats_checkpoint, CatalogJournal, CatalogRecord, CatalogSnapshot, FsckReport,
};
use crate::registry::ViewRegistry;
use crate::stats::LogicalTime;

use context::QueryContext;

pub use context::{
    CandidatesTrace, DurabilityTrace, EvictionTrace, ExecutionTrace, MatchingTrace,
    MaterializationTrace, QueryTrace, RecoveryTrace, RewritingTrace, SelectionTrace,
};

/// The result of processing one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query's result table.
    pub result: Table,
    /// Total simulated elapsed seconds charged to this query
    /// (`query_secs + creation_secs`).
    pub elapsed_secs: f64,
    /// Execution time of the (possibly rewritten) query.
    pub query_secs: f64,
    /// Overhead of materialization / repartitioning performed by this query.
    pub creation_secs: f64,
    /// Name of the view used to answer the query, if any.
    pub used_view: Option<String>,
    /// Human-readable descriptions of views/fragments materialized.
    pub materialized: Vec<String>,
    /// Human-readable descriptions of views/fragments evicted.
    pub evicted: Vec<String>,
    /// Names of views quarantined after permanent I/O failures while this
    /// query was processed.
    pub quarantined: Vec<String>,
    /// Execution metrics of the chosen plan.
    pub metrics: ExecMetrics,
    /// Per-stage counters and simulated costs for this query.
    pub trace: QueryTrace,
}

/// Journal-append debt accumulated since the last drain: retried transient
/// failures and their simulated backoff seconds, charged to the query (or
/// maintenance action) that performed the appends.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct JournalDebt {
    pub(crate) appends: u32,
    pub(crate) retries: u32,
    pub(crate) penalty_secs: f64,
}

/// A DeepSea instance: the materialized-view pool manager wrapped around a
/// catalog, a simulated file system and an execution backend.
pub struct DeepSea {
    pub(crate) config: DeepSeaConfig,
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) fs: Arc<SimFs<Table>>,
    pub(crate) backend: Box<dyn ExecutionBackend>,
    pub(crate) registry: ViewRegistry,
    pub(crate) clock: LogicalTime,
    /// Optional catalog journal; when attached every registry mutation is
    /// recorded at its commit point and the instance can be rebuilt by
    /// [`DeepSea::recover`]. When absent, journaling has zero overhead.
    pub(crate) journal: Option<Arc<CatalogJournal>>,
    /// Mirror ledger of pool usage, maintained at every reserve/release site
    /// so crash recovery can assert the three-way invariant
    /// `pool.used == registry.pool_bytes() == fs.total_bytes()`. Unbounded:
    /// `Smax` is enforced by selection and `enforce_limit`, not here.
    pub(crate) pool: PoolAccountant,
    pub(crate) journal_debt: JournalDebt,
    /// Observability handle. Disabled (the default) it is a no-op; enabled it
    /// only ever *reads* driver state — decisions are identical either way
    /// (enforced by `tests/obs_transparency.rs`).
    pub(crate) obs: Observer,
    /// Cumulative simulated seconds across all processed queries — the span
    /// clock. Advanced unconditionally so attaching an observer mid-run
    /// cannot shift later timestamps.
    pub(crate) sim_elapsed: f64,
    /// Journal records appended since the last installed snapshot; reported
    /// in the `journal_snapshot` audit event.
    pub(crate) appends_since_snapshot: u64,
}

impl DeepSea {
    /// Create an instance with the paper-default cluster and block size.
    pub fn new(catalog: Catalog, config: DeepSeaConfig) -> Self {
        let cluster = ClusterSim::paper_default();
        let fs = SimFs::new(BlockConfig::default(), cluster.weights);
        Self::with_parts(Arc::new(catalog), Arc::new(fs), cluster, config)
    }

    /// Create an instance over existing substrates, simulated by `cluster`.
    pub fn with_parts(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        cluster: ClusterSim,
        config: DeepSeaConfig,
    ) -> Self {
        Self::with_backend(catalog, fs, Box::new(SimBackend::new(cluster)), config)
    }

    /// Create an instance over an arbitrary execution backend — the only
    /// interface through which the driver runs plans and prices I/O.
    pub fn with_backend(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
    ) -> Self {
        Self {
            config,
            catalog,
            fs,
            backend,
            registry: ViewRegistry::new(),
            clock: 0,
            journal: None,
            pool: PoolAccountant::unbounded(),
            journal_debt: JournalDebt::default(),
            obs: Observer::off(),
            sim_elapsed: 0.0,
            appends_since_snapshot: 0,
        }
    }

    /// Builder-style: attach an observability handle. The disabled handle
    /// (`Observer::off()`) keeps every instrumentation site a no-op.
    pub fn with_observer(mut self, obs: Observer) -> Self {
        self.obs = obs;
        self
    }

    /// The attached observability handle.
    pub fn observer(&self) -> &Observer {
        &self.obs
    }

    /// Builder-style: attach a catalog journal. Every registry mutation from
    /// here on is recorded at its commit point; `DeepSea::recover` can then
    /// rebuild this instance from the journal after a crash.
    pub fn with_journal(mut self, journal: Arc<CatalogJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Rebuild an instance from its catalog journal after a crash: load the
    /// latest snapshot, replay the record suffix, then run an **fsck sweep**
    /// reconciling the recovered catalog against the file system — orphaned
    /// files (created but never recorded) are deleted, catalog entries whose
    /// backing files are missing or corrupt are quarantined, and the pool
    /// ledger is re-derived and asserted consistent. Finally a recovery
    /// checkpoint (full snapshot) is installed so a second crash recovers
    /// from the reconciled state — which is what makes recovery idempotent.
    pub fn recover(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
        journal: Arc<CatalogJournal>,
    ) -> (Self, FsckReport) {
        let (snapshot, records) = journal.replay();
        let replayed_records = records.len() as u64;
        let snapshot_lsn = snapshot.as_ref().map(|(lsn, _)| *lsn);
        let (registry, clock) = replay_catalog(snapshot.map(|(_, s)| s), &records);

        let mut ds = Self::with_backend(catalog, fs, backend, config).with_journal(journal);
        ds.registry = registry;
        ds.clock = clock;

        let mut report = ds.fsck();
        report.replayed_records = replayed_records;
        report.snapshot_lsn = snapshot_lsn;

        // Compact the journal to the reconciled post-fsck state so fsck's own
        // quarantines (and any pre-crash record tail) can never be re-applied
        // against a file system that has since moved on.
        if let Some(journal) = &ds.journal {
            journal.install_snapshot(CatalogSnapshot {
                registry: ds.registry.clone(),
                clock: ds.clock,
            });
        }
        (ds, report)
    }

    /// [`DeepSea::recover`] with an observer attached from the start: the
    /// fsck outcome is recorded as counters and an `fsck` audit event.
    pub fn recover_with_observer(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
        journal: Arc<CatalogJournal>,
        obs: Observer,
    ) -> (Self, FsckReport) {
        let (mut ds, report) = Self::recover(catalog, fs, backend, config, journal);
        ds.obs = obs;
        ds.observe_fsck(&report);
        (ds, report)
    }

    /// Record a completed fsck sweep. Pure observation of the report.
    fn observe_fsck(&self, report: &FsckReport) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.counter_add(
            "deepsea_fsck_replayed_records_total",
            None,
            report.replayed_records,
        );
        self.obs.counter_add(
            "deepsea_fsck_orphan_files_total",
            None,
            report.orphan_files as u64,
        );
        self.obs.counter_add(
            "deepsea_fsck_quarantined_views_total",
            None,
            report.quarantined_views as u64,
        );
        self.obs.event(
            self.clock,
            DecisionEvent::Fsck {
                missing_files: report.missing_files as u64,
                corrupt_files: report.corrupt_files as u64,
                orphan_files: report.orphan_files as u64,
                quarantined_views: report.quarantined_views as u64,
                replayed_records: report.replayed_records,
            },
        );
    }

    /// The configuration in force.
    pub fn config(&self) -> &DeepSeaConfig {
        &self.config
    }

    /// The statistics registry (views, partitions, fragments).
    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// Current logical time (number of queries processed).
    pub fn clock(&self) -> LogicalTime {
        self.clock
    }

    /// Simulated bytes currently held by the pool.
    pub fn pool_bytes(&self) -> u64 {
        self.registry.pool_bytes()
    }

    /// The underlying simulated file system.
    pub fn fs(&self) -> &SimFs<Table> {
        &self.fs
    }

    /// The attached catalog journal, if any.
    pub fn journal(&self) -> Option<&Arc<CatalogJournal>> {
        self.journal.as_ref()
    }

    /// The mirror pool ledger (used bytes + over-release violations).
    pub fn pool_accountant(&self) -> &PoolAccountant {
        &self.pool
    }

    /// The cluster model of the execution backend.
    pub fn cluster(&self) -> &ClusterSim {
        self.backend.cluster()
    }

    /// A cost estimator over the backend's cluster model.
    pub(crate) fn estimator(&self) -> CostEstimator<'_> {
        CostEstimator::new(&self.catalog, &self.fs, self.backend.cluster())
    }

    /// Append one record to the attached journal (no-op without one).
    /// Transient journal-write failures are retried under the configured
    /// retry policy, accumulating backoff seconds into the journal debt; a
    /// record is never dropped (the final attempt forces the write). An armed
    /// simulated crash fires from inside the append and propagates as a
    /// panic — exactly the torn-state semantics the crash harness exercises.
    pub(crate) fn journal_emit(&mut self, record: CatalogRecord) {
        let Some(journal) = &self.journal else {
            return;
        };
        self.journal_debt.appends += 1;
        self.appends_since_snapshot += 1;
        let mut attempt = 0u32;
        loop {
            match journal.append(record.clone()) {
                Ok(_) => return,
                Err(_) if attempt < self.config.retry.max_retries => {
                    self.journal_debt.retries += 1;
                    self.journal_debt.penalty_secs += self.config.retry.backoff_secs(attempt);
                    attempt += 1;
                }
                Err(_) => {
                    // Out of retries: a catalog record must not be lost, so
                    // force the write (modelling a synchronous fsync path).
                    journal.append_infallible(record);
                    return;
                }
            }
        }
    }

    /// Take the journal debt accumulated since the last drain.
    pub(crate) fn drain_journal_debt(&mut self) -> JournalDebt {
        std::mem::take(&mut self.journal_debt)
    }

    /// The commit point of one processed query: record the clock advance,
    /// emit a statistics checkpoint / install a snapshot at the configured
    /// cadence, and charge the accumulated journal debt to the query.
    fn journal_commit(&mut self, ctx: &mut QueryContext) {
        if self.journal.is_some() {
            let tnow = ctx.tnow;
            if tnow.is_multiple_of(self.config.journal_checkpoint_every.max(1)) {
                let ckpt = stats_checkpoint(&self.registry, tnow);
                self.journal_emit(ckpt);
            }
            self.journal_emit(CatalogRecord::QueryCommitted { tnow });
            if tnow.is_multiple_of(self.config.journal_snapshot_every.max(1)) {
                if let Some(journal) = &self.journal {
                    journal.install_snapshot(CatalogSnapshot {
                        registry: self.registry.clone(),
                        clock: tnow,
                    });
                    ctx.trace.durability.snapshots += 1;
                    self.obs
                        .counter_inc("deepsea_journal_snapshots_total", None);
                    self.obs.event(
                        tnow,
                        DecisionEvent::JournalSnapshot {
                            appended_since_last: self.appends_since_snapshot,
                        },
                    );
                    self.appends_since_snapshot = 0;
                }
            }
        }
        let debt = self.drain_journal_debt();
        ctx.trace.durability.journal_appends += debt.appends;
        ctx.trace.durability.journal_retries += debt.retries;
        ctx.trace.durability.journal_penalty_secs += debt.penalty_secs;
        ctx.creation_secs += debt.penalty_secs;
        self.obs
            .counter_add("deepsea_journal_appends_total", None, debt.appends as u64);
        self.obs
            .counter_add("deepsea_journal_retries_total", None, debt.retries as u64);
    }

    /// Process one query — Algorithm 1, as a linear sequence of stages over
    /// a per-query [`QueryContext`].
    pub fn process_query(&mut self, plan: &LogicalPlan) -> Result<QueryOutcome, ExecError> {
        self.clock += 1;
        let tnow = self.clock;

        if !self.config.partition_policy.materializes() {
            return self.run_baseline(plan);
        }

        let mut ctx = QueryContext::new(plan, tnow);
        // ── 1. COMPUTEREWRITINGS ─────────────────────────────────────────
        self.stage_compute_rewritings(plan, &mut ctx);
        // ── 2. UPDATESTATS for every (potential) match ───────────────────
        self.stage_update_stats(plan, &mut ctx);
        // ── 3. SELECTREWRITING ───────────────────────────────────────────
        self.stage_select_rewriting(plan, &mut ctx);
        // ── 4. COMPUTEVIEWCAND / ADDCANDIDATES ───────────────────────────
        self.stage_register_candidates(&mut ctx);
        // ── 5. VIEWSELECTION ─────────────────────────────────────────────
        self.stage_select_configuration(&mut ctx);
        // ── 6. INSTRUMENT + EXECUTE, apply the chosen configuration ──────
        let (result, metrics) = self.stage_execute(plan, &mut ctx)?;
        self.stage_apply_evictions(&mut ctx);
        self.stage_materialize(&mut ctx)?;
        self.stage_charge_creation(&mut ctx);
        // ── 7. Enforce Smax with measured sizes ──────────────────────────
        self.stage_enforce_limit(&mut ctx);
        // ── 8. Durable commit point ──────────────────────────────────────
        self.journal_commit(&mut ctx);

        let outcome = QueryOutcome {
            result,
            elapsed_secs: ctx.query_secs + ctx.creation_secs,
            query_secs: ctx.query_secs,
            creation_secs: ctx.creation_secs,
            used_view: ctx.used_view,
            materialized: ctx.materialized,
            evicted: ctx.evicted,
            quarantined: ctx.quarantined,
            metrics,
            trace: ctx.trace,
        };
        self.observe_query(&outcome);
        Ok(outcome)
    }

    /// Record the per-query metrics and spans from the finished outcome.
    /// Reads only — no decision depends on anything done here.
    fn observe_query(&mut self, outcome: &QueryOutcome) {
        let start = self.sim_elapsed;
        // Advance the span clock even when disabled, so enabling observation
        // mid-run cannot shift later span timestamps.
        self.sim_elapsed += outcome.elapsed_secs;
        if !self.obs.enabled() {
            return;
        }
        let tnow = self.clock;
        self.obs.counter_inc("deepsea_queries_total", None);
        self.obs
            .observe("deepsea_query_secs", None, outcome.query_secs);
        self.obs.span(
            tnow,
            "execute",
            outcome.used_view.as_deref(),
            start,
            start + outcome.query_secs,
        );
        if outcome.creation_secs > 0.0 {
            self.obs
                .observe("deepsea_creation_secs", None, outcome.creation_secs);
            self.obs.span(
                tnow,
                "materialize",
                None,
                start + outcome.query_secs,
                start + outcome.elapsed_secs,
            );
        }
        if let Some(view) = &outcome.used_view {
            self.obs.counter_inc("deepsea_view_hits_total", Some(view));
        }
        self.obs.counter_add(
            "deepsea_exec_bytes_read_total",
            outcome.used_view.as_deref(),
            outcome.metrics.bytes_read,
        );
        self.obs.counter_add(
            "deepsea_exec_map_tasks_total",
            None,
            outcome.metrics.map_tasks,
        );
        self.obs.counter_add(
            "deepsea_evictions_total",
            None,
            outcome.evicted.len() as u64,
        );
        self.obs.counter_add(
            "deepsea_quarantines_total",
            None,
            outcome.quarantined.len() as u64,
        );
        self.obs
            .gauge_set("deepsea_pool_bytes", None, self.pool_bytes() as f64);
    }

    /// The Hive baseline: no matching, no materialization — and, unlike
    /// DeepSea's instrumented plans, full predicate pushdown ("most
    /// optimizers will push down selections", §10.2).
    fn run_baseline(&mut self, plan: &LogicalPlan) -> Result<QueryOutcome, ExecError> {
        let optimized = deepsea_engine::optimize::push_down_selections(plan, &self.catalog);
        let (result, metrics) = self.backend.execute(&optimized, &self.catalog, &self.fs)?;
        let query_secs = self.backend.elapsed_secs(&metrics);
        let mut ctx = QueryContext::new(plan, self.clock);
        ctx.query_secs = query_secs;
        ctx.trace.execution.query_secs = query_secs;
        self.journal_commit(&mut ctx);
        let outcome = QueryOutcome {
            result,
            elapsed_secs: query_secs + ctx.creation_secs,
            query_secs,
            creation_secs: ctx.creation_secs,
            used_view: None,
            materialized: Vec::new(),
            evicted: Vec::new(),
            quarantined: Vec::new(),
            metrics,
            trace: ctx.trace,
        };
        self.observe_query(&outcome);
        Ok(outcome)
    }

    /// Execute the chosen plan through the backend, with graceful
    /// degradation: if a rewritten plan fails (transient retries exhausted or
    /// a fragment permanently lost), quarantine the broken view and re-answer
    /// the query from base tables within the same call. Base tables are
    /// durable in this model — views only ever accelerate, never gate, an
    /// answer.
    fn stage_execute(
        &mut self,
        plan: &LogicalPlan,
        ctx: &mut QueryContext,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        match self.backend.execute(&ctx.qbest, &self.catalog, &self.fs) {
            Ok((result, metrics)) => {
                ctx.trace.recovery.retries += metrics.retries as u32;
                ctx.trace.recovery.penalty_secs += metrics.penalty_secs;
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                Ok((result, metrics))
            }
            Err(e) => {
                if matches!(e, ExecError::CorruptIo(_)) {
                    ctx.trace.recovery.corrupt_fragments += 1;
                }
                // Whatever retries the backend burned on the doomed attempt
                // still cost simulated time — collect the debt.
                let (debt_retries, debt_secs) = self.backend.drain_retry_debt();
                // Attribute the failure to a view: the file the error names,
                // or failing that the view the rewriting chose to read.
                let vid = e
                    .file()
                    .and_then(|f| self.registry.view_owning_file(f))
                    .or_else(|| {
                        ctx.used_view
                            .as_deref()
                            .and_then(|name| self.registry.by_name(name))
                    });
                let Some(vid) = vid else {
                    // No view involved — the base plan itself failed, which
                    // this model cannot recover from.
                    return Err(e);
                };
                self.quarantine_into_ctx(vid, ctx);
                ctx.trace.recovery.base_table_fallbacks += 1;
                ctx.used_view = None;
                ctx.qbest = plan.clone();
                // The original plan reads only durable base tables, so this
                // cannot hit another fragment fault.
                let (result, mut metrics) = self.backend.execute(plan, &self.catalog, &self.fs)?;
                metrics.retries += debt_retries;
                metrics.penalty_secs += debt_secs;
                ctx.trace.recovery.retries += metrics.retries as u32;
                ctx.trace.recovery.penalty_secs += metrics.penalty_secs;
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                Ok((result, metrics))
            }
        }
    }
}

#[cfg(test)]
mod tests;
