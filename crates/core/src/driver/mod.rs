//! The online driver — Algorithm 1 (`ProcessQuery`) of the paper, as a
//! staged query-lifecycle pipeline.
//!
//! Each stage lives in its own submodule and communicates through a
//! [`context::QueryContext`] threaded down the pipeline:
//!
//! 1. [`matching`] — compute the possible **rewritings** against every
//!    tracked view (materialized or not) via signature matching and, for
//!    partitioned views, Algorithm-2 fragment covers;
//! 2. [`matching`] — **update statistics**: every view/fragment that could
//!    answer the query records a (potential) benefit event;
//! 3. [`rewriting`] — pick the **cheapest rewriting** among those backed by
//!    the pool (or the original plan);
//! 4. [`candidates`] — derive **view candidates** (Definition 6) and
//!    **partition candidates** (Definition 7) from the chosen plan;
//! 5. [`selection`] — admission filters (`COST ≤ B`), Φ-ranked greedy
//!    knapsack under `Smax` — deciding what to materialize and what to evict;
//! 6. execution via the pluggable [`ExecutionBackend`], then [`evict`] and
//!    [`materialize`] apply the chosen configuration as a by-product (only
//!    the write/repartition overhead is charged to the query, §7.2);
//! 7. [`evict`] — enforce `Smax` with measured sizes.
//!
//! Every stage also fills its slice of the per-query [`QueryTrace`] exposed
//! on [`QueryOutcome`].

pub(crate) mod candidates;
pub(crate) mod context;
pub(crate) mod evict;
pub(crate) mod matching;
pub(crate) mod materialize;
pub(crate) mod recover;
pub(crate) mod rewriting;
pub(crate) mod selection;

use std::sync::Arc;

use deepsea_engine::catalog::Catalog;
use deepsea_engine::cost::CostEstimator;
use deepsea_engine::exec::{ExecError, ExecMetrics};
use deepsea_engine::plan::LogicalPlan;
use deepsea_engine::{ClusterSim, ExecutionBackend, SimBackend};
use deepsea_relation::Table;
use deepsea_storage::{BlockConfig, SimFs};

use crate::config::DeepSeaConfig;
use crate::registry::ViewRegistry;
use crate::stats::LogicalTime;

use context::QueryContext;

pub use context::{
    CandidatesTrace, EvictionTrace, ExecutionTrace, MatchingTrace, MaterializationTrace,
    QueryTrace, RecoveryTrace, RewritingTrace, SelectionTrace,
};

/// The result of processing one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query's result table.
    pub result: Table,
    /// Total simulated elapsed seconds charged to this query
    /// (`query_secs + creation_secs`).
    pub elapsed_secs: f64,
    /// Execution time of the (possibly rewritten) query.
    pub query_secs: f64,
    /// Overhead of materialization / repartitioning performed by this query.
    pub creation_secs: f64,
    /// Name of the view used to answer the query, if any.
    pub used_view: Option<String>,
    /// Human-readable descriptions of views/fragments materialized.
    pub materialized: Vec<String>,
    /// Human-readable descriptions of views/fragments evicted.
    pub evicted: Vec<String>,
    /// Names of views quarantined after permanent I/O failures while this
    /// query was processed.
    pub quarantined: Vec<String>,
    /// Execution metrics of the chosen plan.
    pub metrics: ExecMetrics,
    /// Per-stage counters and simulated costs for this query.
    pub trace: QueryTrace,
}

/// A DeepSea instance: the materialized-view pool manager wrapped around a
/// catalog, a simulated file system and an execution backend.
pub struct DeepSea {
    pub(crate) config: DeepSeaConfig,
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) fs: Arc<SimFs<Table>>,
    pub(crate) backend: Box<dyn ExecutionBackend>,
    pub(crate) registry: ViewRegistry,
    pub(crate) clock: LogicalTime,
}

impl DeepSea {
    /// Create an instance with the paper-default cluster and block size.
    pub fn new(catalog: Catalog, config: DeepSeaConfig) -> Self {
        let cluster = ClusterSim::paper_default();
        let fs = SimFs::new(BlockConfig::default(), cluster.weights);
        Self::with_parts(Arc::new(catalog), Arc::new(fs), cluster, config)
    }

    /// Create an instance over existing substrates, simulated by `cluster`.
    pub fn with_parts(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        cluster: ClusterSim,
        config: DeepSeaConfig,
    ) -> Self {
        Self::with_backend(catalog, fs, Box::new(SimBackend::new(cluster)), config)
    }

    /// Create an instance over an arbitrary execution backend — the only
    /// interface through which the driver runs plans and prices I/O.
    pub fn with_backend(
        catalog: Arc<Catalog>,
        fs: Arc<SimFs<Table>>,
        backend: Box<dyn ExecutionBackend>,
        config: DeepSeaConfig,
    ) -> Self {
        Self {
            config,
            catalog,
            fs,
            backend,
            registry: ViewRegistry::new(),
            clock: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DeepSeaConfig {
        &self.config
    }

    /// The statistics registry (views, partitions, fragments).
    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// Current logical time (number of queries processed).
    pub fn clock(&self) -> LogicalTime {
        self.clock
    }

    /// Simulated bytes currently held by the pool.
    pub fn pool_bytes(&self) -> u64 {
        self.registry.pool_bytes()
    }

    /// The underlying simulated file system.
    pub fn fs(&self) -> &SimFs<Table> {
        &self.fs
    }

    /// The cluster model of the execution backend.
    pub fn cluster(&self) -> &ClusterSim {
        self.backend.cluster()
    }

    /// A cost estimator over the backend's cluster model.
    pub(crate) fn estimator(&self) -> CostEstimator<'_> {
        CostEstimator::new(&self.catalog, &self.fs, self.backend.cluster())
    }

    /// Process one query — Algorithm 1, as a linear sequence of stages over
    /// a per-query [`QueryContext`].
    pub fn process_query(&mut self, plan: &LogicalPlan) -> Result<QueryOutcome, ExecError> {
        self.clock += 1;
        let tnow = self.clock;

        if !self.config.partition_policy.materializes() {
            return self.run_baseline(plan);
        }

        let mut ctx = QueryContext::new(plan, tnow);
        // ── 1. COMPUTEREWRITINGS ─────────────────────────────────────────
        self.stage_compute_rewritings(plan, &mut ctx);
        // ── 2. UPDATESTATS for every (potential) match ───────────────────
        self.stage_update_stats(plan, &mut ctx);
        // ── 3. SELECTREWRITING ───────────────────────────────────────────
        self.stage_select_rewriting(plan, &mut ctx);
        // ── 4. COMPUTEVIEWCAND / ADDCANDIDATES ───────────────────────────
        self.stage_register_candidates(&mut ctx);
        // ── 5. VIEWSELECTION ─────────────────────────────────────────────
        self.stage_select_configuration(&mut ctx);
        // ── 6. INSTRUMENT + EXECUTE, apply the chosen configuration ──────
        let (result, metrics) = self.stage_execute(plan, &mut ctx)?;
        self.stage_apply_evictions(&mut ctx);
        self.stage_materialize(&mut ctx)?;
        self.stage_charge_creation(&mut ctx);
        // ── 7. Enforce Smax with measured sizes ──────────────────────────
        self.stage_enforce_limit(&mut ctx);

        Ok(QueryOutcome {
            result,
            elapsed_secs: ctx.query_secs + ctx.creation_secs,
            query_secs: ctx.query_secs,
            creation_secs: ctx.creation_secs,
            used_view: ctx.used_view,
            materialized: ctx.materialized,
            evicted: ctx.evicted,
            quarantined: ctx.quarantined,
            metrics,
            trace: ctx.trace,
        })
    }

    /// The Hive baseline: no matching, no materialization — and, unlike
    /// DeepSea's instrumented plans, full predicate pushdown ("most
    /// optimizers will push down selections", §10.2).
    fn run_baseline(&mut self, plan: &LogicalPlan) -> Result<QueryOutcome, ExecError> {
        let optimized = deepsea_engine::optimize::push_down_selections(plan, &self.catalog);
        let (result, metrics) = self.backend.execute(&optimized, &self.catalog, &self.fs)?;
        let query_secs = self.backend.elapsed_secs(&metrics);
        let mut trace = QueryTrace::default();
        trace.execution.query_secs = query_secs;
        Ok(QueryOutcome {
            result,
            elapsed_secs: query_secs,
            query_secs,
            creation_secs: 0.0,
            used_view: None,
            materialized: Vec::new(),
            evicted: Vec::new(),
            quarantined: Vec::new(),
            metrics,
            trace,
        })
    }

    /// Execute the chosen plan through the backend, with graceful
    /// degradation: if a rewritten plan fails (transient retries exhausted or
    /// a fragment permanently lost), quarantine the broken view and re-answer
    /// the query from base tables within the same call. Base tables are
    /// durable in this model — views only ever accelerate, never gate, an
    /// answer.
    fn stage_execute(
        &mut self,
        plan: &LogicalPlan,
        ctx: &mut QueryContext,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        match self.backend.execute(&ctx.qbest, &self.catalog, &self.fs) {
            Ok((result, metrics)) => {
                ctx.trace.recovery.retries += metrics.retries as u32;
                ctx.trace.recovery.penalty_secs += metrics.penalty_secs;
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                Ok((result, metrics))
            }
            Err(e) => {
                // Whatever retries the backend burned on the doomed attempt
                // still cost simulated time — collect the debt.
                let (debt_retries, debt_secs) = self.backend.drain_retry_debt();
                // Attribute the failure to a view: the file the error names,
                // or failing that the view the rewriting chose to read.
                let vid = e
                    .file()
                    .and_then(|f| self.registry.view_owning_file(f))
                    .or_else(|| {
                        ctx.used_view
                            .as_deref()
                            .and_then(|name| self.registry.by_name(name))
                    });
                let Some(vid) = vid else {
                    // No view involved — the base plan itself failed, which
                    // this model cannot recover from.
                    return Err(e);
                };
                self.quarantine_into_ctx(vid, ctx);
                ctx.trace.recovery.base_table_fallbacks += 1;
                ctx.used_view = None;
                ctx.qbest = plan.clone();
                // The original plan reads only durable base tables, so this
                // cannot hit another fragment fault.
                let (result, mut metrics) = self.backend.execute(plan, &self.catalog, &self.fs)?;
                metrics.retries += debt_retries;
                metrics.penalty_secs += debt_secs;
                ctx.trace.recovery.retries += metrics.retries as u32;
                ctx.trace.recovery.penalty_secs += metrics.penalty_secs;
                ctx.query_secs = self.backend.elapsed_secs(&metrics);
                ctx.trace.execution.query_secs = ctx.query_secs;
                Ok((result, metrics))
            }
        }
    }
}

#[cfg(test)]
mod tests;
