//! Per-query pipeline state ([`QueryContext`]) and the public per-stage
//! instrumentation ([`QueryTrace`]) every [`super::QueryOutcome`] carries.

use deepsea_engine::plan::LogicalPlan;
use serde::{ObjectBuilder, Serialize, Value};

use crate::filter_tree::ViewId;
use crate::selection::SelectionResult;
use crate::stats::LogicalTime;

use super::read_path::MatchHit;

/// Counters from the matching stage (Algorithm 1 lines 1–2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MatchingTrace {
    /// Definition-6-shaped subplans the query exposed for matching.
    pub roots: u32,
    /// (subquery, view) signature matches found.
    pub hits: u32,
    /// Matches backed by materialized data (whole file or fragment cover).
    pub materialized_hits: u32,
    /// Distinct views whose statistics recorded a benefit event.
    pub views_updated: u32,
}

/// Counters from the rewriting stage (Algorithm 1 line 3).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RewritingTrace {
    /// Rewritten plans that were actually costed against the base plan.
    pub rewrites_costed: u32,
    /// Estimated cost of the original plan (simulated seconds).
    pub base_cost_secs: f64,
    /// Estimated cost of the chosen plan (equals `base_cost_secs` when no
    /// rewriting won).
    pub best_cost_secs: f64,
}

/// Counters from candidate derivation (Definitions 6 and 7, line 4).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CandidatesTrace {
    /// View candidates registered from the chosen plan's subqueries.
    pub view_candidates: u32,
    /// How many of those were first seen by this query.
    pub new_views: u32,
    /// Range selections that produced partition-candidate work.
    pub partition_selections: u32,
    /// Candidate fragments newly tracked by this query.
    pub new_fragments: u32,
}

/// Counters from Φ-ranked greedy selection (line 5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SelectionTrace {
    /// `|ALLCAND|` — items the knapsack considered.
    pub considered: u32,
    /// Unmaterialized items chosen for creation.
    pub planned_creations: u32,
    /// Materialized items chosen for eviction.
    pub planned_evictions: u32,
}

/// The execution stage (line 6) — the only stage with a real simulated cost
/// on the query path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Simulated seconds of the chosen plan's execution.
    pub query_secs: f64,
}

/// Counters from materialization (line 6, by-product writes; §7.2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaterializationTrace {
    /// Bytes read back for repartitioning (fragment covers, splits).
    pub bytes_read: u64,
    /// Bytes written for new views/fragments.
    pub bytes_written: u64,
    /// Output files committed.
    pub files_written: u64,
    /// Materialized source fragments covered while building new fragments.
    pub fragments_covered: u64,
    /// Simulated seconds charged for the combined instrumented job.
    pub creation_secs: f64,
}

/// Counters from eviction (line 5's plan applied, plus `Smax` enforcement).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvictionTrace {
    /// Evictions planned by selection and actually performed.
    pub selected: u32,
    /// Additional evictions forced by `enforce_limit` (actual sizes exceeded
    /// the estimates selection planned with).
    pub limit_forced: u32,
    /// Simulated seconds charged for deleting the evicted files (zero under
    /// the default cost weights, where deletes are metadata-only).
    pub delete_secs: f64,
}

/// Counters from fault recovery: retries absorbed, views quarantined after
/// permanent losses, and base-table fallbacks. All zero on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryTrace {
    /// Transient-failure retries absorbed (execution and materialization).
    pub retries: u32,
    /// Simulated seconds of retry backoff and latency spikes charged to this
    /// query's elapsed time.
    pub penalty_secs: f64,
    /// Views quarantined after a permanent I/O failure.
    pub quarantined_views: u32,
    /// Pool bytes released by those quarantines.
    pub quarantined_bytes: u64,
    /// Rewritten plans that failed and were re-answered from base tables.
    pub base_table_fallbacks: u32,
    /// Fragment reads blocked by a node outage and patched at fragment
    /// granularity (re-planned around the offline fragment rather than
    /// abandoning the whole view).
    pub fragment_fallbacks: u32,
    /// Fragment reads that failed checksum verification (corruption detected
    /// on read, never served). Each routes through the quarantine path.
    pub corrupt_fragments: u32,
    /// Rewritings skipped because an open circuit breaker guarded the chosen
    /// view; the query went straight to base tables without burning retries.
    pub breaker_short_circuits: u32,
}

/// Counters from catalog journaling. All zero when no journal is attached —
/// a journal-less run is bit-transparent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DurabilityTrace {
    /// Journal records appended while processing this query.
    pub journal_appends: u32,
    /// Transient journal-write failures retried.
    pub journal_retries: u32,
    /// Simulated seconds of journal-retry backoff charged to this query.
    pub journal_penalty_secs: f64,
    /// Full-state snapshots installed (truncating the record log).
    pub snapshots: u32,
}

/// Wall-clock-free per-stage instrumentation of one `process_query` call.
///
/// Counters are cheap to fill (no timers — the simulator's notion of cost is
/// already deterministic seconds) and let the bench harness attribute a
/// run's behaviour to pipeline stages: how much matching happened, whether
/// rewritings won, how much candidate churn selection saw, and where the
/// simulated seconds went.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryTrace {
    /// Stage 1–2: signature matching and statistics updates.
    pub matching: MatchingTrace,
    /// Stage 3: rewriting selection.
    pub rewriting: RewritingTrace,
    /// Stage 4: candidate derivation.
    pub candidates: CandidatesTrace,
    /// Stage 5: Φ-ranked selection.
    pub selection: SelectionTrace,
    /// Stage 6: execution.
    pub execution: ExecutionTrace,
    /// Stage 6: by-product materialization.
    pub materialization: MaterializationTrace,
    /// Stages 5/7: evictions applied.
    pub eviction: EvictionTrace,
    /// Fault recovery: retries, quarantines, base-table fallbacks.
    pub recovery: RecoveryTrace,
    /// Catalog journaling: appends, retries, snapshots.
    pub durability: DurabilityTrace,
}

impl QueryTrace {
    /// Every trace field, flattened to `("stage.field", value)` pairs.
    ///
    /// This destructures every sub-trace exhaustively (no `..` patterns), so
    /// adding a field to any trace struct **fails to compile** until it is
    /// represented here — and the completeness tests in the bench harness
    /// then force it into `StageTotals` and `stage_breakdown` too.
    pub fn fields(&self) -> Vec<(&'static str, f64)> {
        let QueryTrace {
            matching:
                MatchingTrace {
                    roots,
                    hits,
                    materialized_hits,
                    views_updated,
                },
            rewriting:
                RewritingTrace {
                    rewrites_costed,
                    base_cost_secs,
                    best_cost_secs,
                },
            candidates:
                CandidatesTrace {
                    view_candidates,
                    new_views,
                    partition_selections,
                    new_fragments,
                },
            selection:
                SelectionTrace {
                    considered,
                    planned_creations,
                    planned_evictions,
                },
            execution: ExecutionTrace { query_secs },
            materialization:
                MaterializationTrace {
                    bytes_read,
                    bytes_written,
                    files_written,
                    fragments_covered,
                    creation_secs,
                },
            eviction:
                EvictionTrace {
                    selected,
                    limit_forced,
                    delete_secs,
                },
            recovery:
                RecoveryTrace {
                    retries,
                    penalty_secs,
                    quarantined_views,
                    quarantined_bytes,
                    base_table_fallbacks,
                    fragment_fallbacks,
                    corrupt_fragments,
                    breaker_short_circuits,
                },
            durability:
                DurabilityTrace {
                    journal_appends,
                    journal_retries,
                    journal_penalty_secs,
                    snapshots,
                },
        } = *self;
        vec![
            ("matching.roots", roots as f64),
            ("matching.hits", hits as f64),
            ("matching.materialized_hits", materialized_hits as f64),
            ("matching.views_updated", views_updated as f64),
            ("rewriting.rewrites_costed", rewrites_costed as f64),
            ("rewriting.base_cost_secs", base_cost_secs),
            ("rewriting.best_cost_secs", best_cost_secs),
            ("candidates.view_candidates", view_candidates as f64),
            ("candidates.new_views", new_views as f64),
            (
                "candidates.partition_selections",
                partition_selections as f64,
            ),
            ("candidates.new_fragments", new_fragments as f64),
            ("selection.considered", considered as f64),
            ("selection.planned_creations", planned_creations as f64),
            ("selection.planned_evictions", planned_evictions as f64),
            ("execution.query_secs", query_secs),
            ("materialization.bytes_read", bytes_read as f64),
            ("materialization.bytes_written", bytes_written as f64),
            ("materialization.files_written", files_written as f64),
            (
                "materialization.fragments_covered",
                fragments_covered as f64,
            ),
            ("materialization.creation_secs", creation_secs),
            ("eviction.selected", selected as f64),
            ("eviction.limit_forced", limit_forced as f64),
            ("eviction.delete_secs", delete_secs),
            ("recovery.retries", retries as f64),
            ("recovery.penalty_secs", penalty_secs),
            ("recovery.quarantined_views", quarantined_views as f64),
            ("recovery.quarantined_bytes", quarantined_bytes as f64),
            ("recovery.base_table_fallbacks", base_table_fallbacks as f64),
            ("recovery.fragment_fallbacks", fragment_fallbacks as f64),
            ("recovery.corrupt_fragments", corrupt_fragments as f64),
            (
                "recovery.breaker_short_circuits",
                breaker_short_circuits as f64,
            ),
            ("durability.journal_appends", journal_appends as f64),
            ("durability.journal_retries", journal_retries as f64),
            ("durability.journal_penalty_secs", journal_penalty_secs),
            ("durability.snapshots", snapshots as f64),
        ]
    }
}

impl Serialize for MatchingTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("roots", self.roots)
            .field("hits", self.hits)
            .field("materialized_hits", self.materialized_hits)
            .field("views_updated", self.views_updated)
            .build()
    }
}

impl Serialize for RewritingTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("rewrites_costed", self.rewrites_costed)
            .field("base_cost_secs", self.base_cost_secs)
            .field("best_cost_secs", self.best_cost_secs)
            .build()
    }
}

impl Serialize for CandidatesTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("view_candidates", self.view_candidates)
            .field("new_views", self.new_views)
            .field("partition_selections", self.partition_selections)
            .field("new_fragments", self.new_fragments)
            .build()
    }
}

impl Serialize for SelectionTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("considered", self.considered)
            .field("planned_creations", self.planned_creations)
            .field("planned_evictions", self.planned_evictions)
            .build()
    }
}

impl Serialize for ExecutionTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("query_secs", self.query_secs)
            .build()
    }
}

impl Serialize for MaterializationTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("bytes_read", self.bytes_read)
            .field("bytes_written", self.bytes_written)
            .field("files_written", self.files_written)
            .field("fragments_covered", self.fragments_covered)
            .field("creation_secs", self.creation_secs)
            .build()
    }
}

impl Serialize for EvictionTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("selected", self.selected)
            .field("limit_forced", self.limit_forced)
            .field("delete_secs", self.delete_secs)
            .build()
    }
}

impl Serialize for RecoveryTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("retries", self.retries)
            .field("penalty_secs", self.penalty_secs)
            .field("quarantined_views", self.quarantined_views)
            .field("quarantined_bytes", self.quarantined_bytes)
            .field("base_table_fallbacks", self.base_table_fallbacks)
            .field("fragment_fallbacks", self.fragment_fallbacks)
            .field("corrupt_fragments", self.corrupt_fragments)
            .field("breaker_short_circuits", self.breaker_short_circuits)
            .build()
    }
}

impl Serialize for DurabilityTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("journal_appends", self.journal_appends)
            .field("journal_retries", self.journal_retries)
            .field("journal_penalty_secs", self.journal_penalty_secs)
            .field("snapshots", self.snapshots)
            .build()
    }
}

impl Serialize for QueryTrace {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("matching", self.matching)
            .field("rewriting", self.rewriting)
            .field("candidates", self.candidates)
            .field("selection", self.selection)
            .field("execution", self.execution)
            .field("materialization", self.materialization)
            .field("eviction", self.eviction)
            .field("recovery", self.recovery)
            .field("durability", self.durability)
            .build()
    }
}

/// Accumulated I/O of the materializations a query performs; converted to
/// seconds once per query (all writes of one query run as a single
/// instrumented MapReduce job).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CreationCharge {
    pub(crate) read_bytes: u64,
    pub(crate) write_bytes: u64,
    pub(crate) files: u64,
    /// Source fragments read through Algorithm-2 covers (trace only — does
    /// not affect the charged seconds).
    pub(crate) cover_reads: u64,
    /// Transient-failure retries absorbed by materialization I/O.
    pub(crate) retries: u32,
    /// Simulated backoff/spike seconds those retries cost, plus the delete
    /// cost of source fragments dropped during refinement (charged into
    /// `creation_secs`).
    pub(crate) penalty_secs: f64,
}

impl CreationCharge {
    pub(crate) fn absorb(&mut self, other: CreationCharge) {
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.files += other.files;
        self.cover_reads += other.cover_reads;
        self.retries += other.retries;
        self.penalty_secs += other.penalty_secs;
    }
}

/// Mutable state threaded through the stages of one `process_query` call.
///
/// Every stage reads what earlier stages produced and records its own
/// contribution; `process_query` folds the final state into a
/// [`super::QueryOutcome`].
pub(crate) struct QueryContext {
    /// Logical timestamp of this query (the advanced clock).
    pub(crate) tnow: LogicalTime,
    /// The plan to execute — the original until rewriting replaces it.
    pub(crate) qbest: LogicalPlan,
    /// Name of the view the chosen rewriting reads, if any.
    pub(crate) used_view: Option<String>,
    /// Signature matches found by the matching stage.
    pub(crate) hits: Vec<MatchHit>,
    /// View candidates relevant to this query (Definition 6).
    pub(crate) new_cands: Vec<ViewId>,
    /// The materialization/eviction plan chosen by selection.
    pub(crate) selection: SelectionResult,
    /// Accumulated I/O of performed materializations.
    pub(crate) charge: CreationCharge,
    /// Simulated execution seconds of `qbest`.
    pub(crate) query_secs: f64,
    /// Simulated seconds of the combined creation job.
    pub(crate) creation_secs: f64,
    /// Descriptions of views/fragments written.
    pub(crate) materialized: Vec<String>,
    /// Descriptions of views/fragments dropped.
    pub(crate) evicted: Vec<String>,
    /// Names of views quarantined while processing this query.
    pub(crate) quarantined: Vec<String>,
    /// Per-stage instrumentation, exposed on the outcome.
    pub(crate) trace: QueryTrace,
    /// Causal span parent this query's read-path spans attach under.
    /// [`deepsea_obs::SpanCtx::NONE`] (the default) keeps the read path
    /// span-free — exactly the pre-tracing behaviour.
    pub(crate) span: deepsea_obs::SpanCtx,
    /// Cumulative sim-seconds (on the *caller's* timeline — the server's
    /// schedule or the driver's span clock) this query's spans anchor at.
    pub(crate) span_anchor_secs: f64,
}

impl QueryContext {
    pub(crate) fn new(plan: &LogicalPlan, tnow: LogicalTime) -> Self {
        Self {
            tnow,
            qbest: plan.clone(),
            used_view: None,
            hits: Vec::new(),
            new_cands: Vec::new(),
            selection: SelectionResult::default(),
            charge: CreationCharge::default(),
            query_secs: 0.0,
            creation_secs: 0.0,
            materialized: Vec::new(),
            evicted: Vec::new(),
            quarantined: Vec::new(),
            trace: QueryTrace::default(),
            span: deepsea_obs::SpanCtx::NONE,
            span_anchor_secs: 0.0,
        }
    }

    /// Attach this query to a causal trace: read-path spans become children
    /// of `parent`, anchored at `anchor_secs` on the caller's timeline.
    pub(crate) fn in_span(mut self, parent: deepsea_obs::SpanCtx, anchor_secs: f64) -> Self {
        self.span = parent;
        self.span_anchor_secs = anchor_secs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creation_charge_absorbs_componentwise() {
        let mut a = CreationCharge {
            read_bytes: 1,
            write_bytes: 2,
            files: 3,
            cover_reads: 4,
            retries: 5,
            penalty_secs: 6.0,
        };
        a.absorb(CreationCharge {
            read_bytes: 10,
            write_bytes: 20,
            files: 30,
            cover_reads: 40,
            retries: 50,
            penalty_secs: 60.0,
        });
        assert_eq!(a.read_bytes, 11);
        assert_eq!(a.write_bytes, 22);
        assert_eq!(a.files, 33);
        assert_eq!(a.cover_reads, 44);
        assert_eq!(a.retries, 55);
        assert_eq!(a.penalty_secs, 66.0);
    }

    #[test]
    fn trace_fields_and_serialization_cover_every_field() {
        // Give every field a distinct non-zero value so both representations
        // can be cross-checked field by field.
        let mut trace = QueryTrace::default();
        for (i, (_, _)) in trace.fields().iter().enumerate() {
            set_field_by_index(&mut trace, i, (i + 1) as f64);
        }
        let flat = trace.fields();
        assert_eq!(flat.len(), 35);
        // Names are unique and values survived the round trip.
        let mut names: Vec<&str> = flat.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), flat.len(), "duplicate flattened name");
        for (i, (name, v)) in flat.iter().enumerate() {
            assert_eq!(*v, (i + 1) as f64, "{name}");
        }
        // The serialized object exposes the same leaves under stage objects.
        let json = serde::to_string(&trace);
        for (name, v) in &flat {
            let leaf = name.split('.').next_back().unwrap();
            assert!(
                json.contains(&format!("\"{leaf}\":{v}")),
                "missing {name}={v} in {json}"
            );
        }
    }

    /// Poke trace field `i` (in `fields()` order) to `v`. Kept in sync by
    /// the assertion above: a mismatch in count or order fails the test.
    fn set_field_by_index(t: &mut QueryTrace, i: usize, v: f64) {
        match i {
            0 => t.matching.roots = v as u32,
            1 => t.matching.hits = v as u32,
            2 => t.matching.materialized_hits = v as u32,
            3 => t.matching.views_updated = v as u32,
            4 => t.rewriting.rewrites_costed = v as u32,
            5 => t.rewriting.base_cost_secs = v,
            6 => t.rewriting.best_cost_secs = v,
            7 => t.candidates.view_candidates = v as u32,
            8 => t.candidates.new_views = v as u32,
            9 => t.candidates.partition_selections = v as u32,
            10 => t.candidates.new_fragments = v as u32,
            11 => t.selection.considered = v as u32,
            12 => t.selection.planned_creations = v as u32,
            13 => t.selection.planned_evictions = v as u32,
            14 => t.execution.query_secs = v,
            15 => t.materialization.bytes_read = v as u64,
            16 => t.materialization.bytes_written = v as u64,
            17 => t.materialization.files_written = v as u64,
            18 => t.materialization.fragments_covered = v as u64,
            19 => t.materialization.creation_secs = v,
            20 => t.eviction.selected = v as u32,
            21 => t.eviction.limit_forced = v as u32,
            22 => t.eviction.delete_secs = v,
            23 => t.recovery.retries = v as u32,
            24 => t.recovery.penalty_secs = v,
            25 => t.recovery.quarantined_views = v as u32,
            26 => t.recovery.quarantined_bytes = v as u64,
            27 => t.recovery.base_table_fallbacks = v as u32,
            28 => t.recovery.fragment_fallbacks = v as u32,
            29 => t.recovery.corrupt_fragments = v as u32,
            30 => t.recovery.breaker_short_circuits = v as u32,
            31 => t.durability.journal_appends = v as u32,
            32 => t.durability.journal_retries = v as u32,
            33 => t.durability.journal_penalty_secs = v,
            34 => t.durability.snapshots = v as u32,
            _ => panic!("fields() grew without extending set_field_by_index"),
        }
    }

    #[test]
    fn fresh_context_starts_with_the_original_plan() {
        let plan = LogicalPlan::scan("t");
        let ctx = QueryContext::new(&plan, 7);
        assert_eq!(ctx.tnow, 7);
        assert_eq!(ctx.qbest, plan);
        assert!(ctx.used_view.is_none());
        assert_eq!(ctx.trace, QueryTrace::default());
    }
}
