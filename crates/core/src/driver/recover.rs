//! Fault recovery: retrying fragment I/O under the configured
//! [`RetryPolicy`](deepsea_engine::RetryPolicy) and quarantining views whose
//! backing data is permanently lost.
//!
//! The contract that makes all of this safe is the paper's framing of views
//! as *opportunistic accelerators*: base tables are durable and can always
//! answer the query, so the worst a lost fragment can cost is time — never
//! correctness. Quarantine therefore only has to (a) release the lost data
//! from pool accounting, (b) stop the view from matching until it is rebuilt,
//! and (c) leave statistics intact so a hot view earns re-materialization
//! quickly once a later query re-registers its shape.

use std::sync::Arc;

use deepsea_relation::Table;
use deepsea_storage::{FileId, IoError};

use crate::filter_tree::ViewId;
use crate::registry::QuarantineReport;
use crate::stats::LogicalTime;

use super::context::{CreationCharge, QueryContext};
use super::DeepSea;

impl DeepSea {
    /// Read a fragment file, retrying transient failures under
    /// `config.retry`. Retry counts and backoff/spike seconds accumulate
    /// into `charge` (including the wasted backoff of a failed read, so the
    /// caller's recovery path is priced honestly). A permanent loss or an
    /// exhausted budget returns the error.
    pub(crate) fn read_retrying(
        &self,
        file: FileId,
        charge: &mut CreationCharge,
    ) -> Result<(Arc<Table>, u64), IoError> {
        let policy = self.config.retry;
        let mut attempts = 0u32;
        loop {
            match self.fs.try_read(file) {
                Ok(out) => {
                    charge.retries += attempts;
                    charge.penalty_secs += out.spike_secs;
                    return Ok((out.value, out.sim_bytes));
                }
                Err(e) if e.is_transient() && attempts < policy.max_retries => {
                    charge.penalty_secs += policy.backoff_secs(attempts);
                    attempts += 1;
                }
                Err(e) => {
                    charge.retries += attempts;
                    return Err(e);
                }
            }
        }
    }

    /// Create a file, retrying transient write failures under
    /// `config.retry`. Writes never lose data: the payload is in memory, so
    /// once the budget is exhausted the write is forced through the
    /// infallible path (modelling re-routing to healthy datanodes).
    pub(crate) fn create_retrying(
        &self,
        name: String,
        sim_bytes: u64,
        payload: Table,
        charge: &mut CreationCharge,
    ) -> FileId {
        let policy = self.config.retry;
        let mut attempts = 0u32;
        loop {
            match self.fs.try_create(name.clone(), sim_bytes, payload.clone()) {
                Ok(out) => {
                    charge.retries += attempts;
                    charge.penalty_secs += out.spike_secs;
                    return out.value;
                }
                Err(IoError::TransientWrite) if attempts < policy.max_retries => {
                    charge.penalty_secs += policy.backoff_secs(attempts);
                    attempts += 1;
                }
                Err(_) => {
                    charge.retries += attempts;
                    let (id, _) = self.fs.create(name, sim_bytes, payload);
                    return id;
                }
            }
        }
    }

    /// Quarantine a view: mark its data lost in the registry (releasing its
    /// pool bytes and stripping it from the filter tree) and drop whatever
    /// backing files still exist. Returns the view's name and the report.
    pub(crate) fn quarantine_view(
        &mut self,
        vid: ViewId,
        tnow: LogicalTime,
    ) -> (String, QuarantineReport) {
        let report = self.registry.quarantine(vid, tnow);
        for file in &report.files {
            // The file that triggered the failure is usually already gone
            // from the FS; deleting the survivors is metadata-only.
            self.fs.delete(*file);
        }
        (self.registry.view(vid).name.clone(), report)
    }

    /// Quarantine a view during query processing, recording the event in the
    /// query's trace. No-op if the view is already quarantined (a query can
    /// hit the same broken view from several stages).
    pub(crate) fn quarantine_into_ctx(&mut self, vid: ViewId, ctx: &mut QueryContext) {
        if self.registry.view(vid).is_quarantined() {
            return;
        }
        let (name, report) = self.quarantine_view(vid, ctx.tnow);
        ctx.trace.recovery.quarantined_views += 1;
        ctx.trace.recovery.quarantined_bytes += report.bytes;
        ctx.quarantined.push(name);
    }
}
