//! Stages 1–2 of Algorithm 1: compute the possible rewritings against every
//! tracked view (signature matching plus Algorithm-2 fragment covers) and
//! record a benefit event for every view/fragment that could have answered
//! the query — "no matter whether the view or fragment is currently in the
//! pool or not" (§8.4).

use deepsea_engine::plan::LogicalPlan;
use deepsea_engine::signature::{matches, Compensation, Signature};
use deepsea_engine::subquery::all_subplans;
use deepsea_storage::FileId;

use crate::candidates::clamp_to_domain;
use crate::filter_tree::ViewId;
use crate::interval::Interval;
use crate::matching::partition_matching;
use crate::registry::ViewMeta;

use super::candidates::attr_matches;
use super::context::QueryContext;
use super::DeepSea;

/// A matched (sub)query/view pair.
pub(crate) struct MatchHit {
    pub(crate) path: Vec<usize>,
    pub(crate) view: ViewId,
    pub(crate) comp: Compensation,
    /// Estimated cost of computing the subquery from scratch.
    pub(crate) sub_cost: f64,
    /// Fragment files to scan if the view is materialized and covers the
    /// needed range.
    pub(crate) access: Option<Access>,
}

pub(crate) struct Access {
    pub(crate) files: Vec<FileId>,
    pub(crate) bytes: u64,
}

impl DeepSea {
    /// Stage 1 — `COMPUTEREWRITINGS`: match every Definition-6-shaped
    /// subplan against the signature buckets of the registry.
    pub(crate) fn stage_compute_rewritings(&self, plan: &LogicalPlan, ctx: &mut QueryContext) {
        let estimator = self.estimator();
        let mut hits = Vec::new();
        let mut roots = 0u32;
        for (path, sub) in Self::match_roots(plan) {
            roots += 1;
            let Some(qsig) = Signature::of(sub) else {
                continue;
            };
            for &vid in self.registry.lookup_bucket(&qsig) {
                let view = self.registry.view(vid);
                let Some(comp) = matches(&view.sig, &qsig) else {
                    continue;
                };
                let access = self.find_access(vid, &qsig);
                hits.push(MatchHit {
                    path: path.clone(),
                    view: vid,
                    comp,
                    sub_cost: estimator.estimated_secs(sub),
                    access,
                });
            }
        }
        ctx.trace.matching.roots = roots;
        ctx.trace.matching.hits = hits.len() as u32;
        ctx.trace.matching.materialized_hits =
            hits.iter().filter(|h| h.access.is_some()).count() as u32;
        self.obs
            .counter_add("deepsea_match_roots_total", None, roots as u64);
        self.obs
            .counter_add("deepsea_match_hits_total", None, hits.len() as u64);
        self.obs.counter_add(
            "deepsea_match_materialized_hits_total",
            None,
            ctx.trace.matching.materialized_hits as u64,
        );
        ctx.hits = hits;
    }

    /// Subplans a view may be matched against: Definition 6 shapes, plus any
    /// chain of selections directly above one (the enclosing range selection
    /// must take part in matching so it can become fragment-selecting
    /// compensation, §8.2).
    pub(crate) fn match_roots(plan: &LogicalPlan) -> Vec<(Vec<usize>, &LogicalPlan)> {
        fn is_root(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Join { .. }
                | LogicalPlan::Aggregate { .. }
                | LogicalPlan::Project { .. } => true,
                LogicalPlan::Select { input, .. } => is_root(input),
                _ => false,
            }
        }
        all_subplans(plan)
            .into_iter()
            .filter(|(_, p)| is_root(p))
            .collect()
    }

    /// Cheapest way to read the view for this query: the whole file, or an
    /// Algorithm-2 fragment cover of the needed range on some partition.
    fn find_access(&self, vid: ViewId, qsig: &Signature) -> Option<Access> {
        let view = self.registry.view(vid);
        let mut best: Option<Access> = None;
        if let Some(f) = view.whole_file {
            best = Some(Access {
                files: vec![f],
                bytes: view.stats.size,
            });
        }
        for ps in view.partitions.values() {
            let mats = ps.materialized();
            if mats.is_empty() {
                continue;
            }
            let needed = match qsig.range_on_attr(&ps.attr) {
                Some(r) => match clamp_to_domain(r, &ps.domain) {
                    Some(iv) => iv,
                    None => continue, // query range misses the domain
                },
                None => ps.domain,
            };
            let Some(cover) = partition_matching(&needed, &mats) else {
                continue;
            };
            let mut files = Vec::with_capacity(cover.len());
            let mut bytes = 0;
            for fid in &cover {
                let frag = ps
                    .frag(*fid)
                    .expect("invariant: cover returns tracked fragments");
                files.push(
                    frag.file
                        .expect("invariant: cover returns materialized fragments"),
                );
                bytes += frag.size;
            }
            if best.as_ref().is_none_or(|b| bytes < b.bytes) {
                best = Some(Access { files, bytes });
            }
        }
        best
    }

    /// Stage 2 — `UPDATESTATS`: record benefit events for matched views and
    /// hits for overlapped fragments.
    pub(crate) fn stage_update_stats(&mut self, plan: &LogicalPlan, ctx: &mut QueryContext) {
        let block = self.fs.block_config().block_bytes;
        let tnow = ctx.tnow;
        // Pre-compute (view, saving, needed-range) outside the mutable loop;
        // several subqueries can match the same view — keep the hit with the
        // largest saving (the most specific, e.g. the one carrying the range
        // selection).
        let mut updates: std::collections::BTreeMap<ViewId, (f64, Vec<(String, Interval)>)> =
            std::collections::BTreeMap::new();
        for hit in &ctx.hits {
            let view = self.registry.view(hit.view);
            let scan_bytes = match &hit.access {
                Some(a) => a.bytes,
                // Not materialized yet: COST(Q/V) anticipates *partitioned*
                // access — a future query only reads the fragments its range
                // needs (this is the whole point of partitioned views).
                None => {
                    let mut bytes = view.stats.size;
                    if self.config.partition_policy.partitions() {
                        let frac = self.comp_range_fraction(view, &hit.comp);
                        bytes = ((bytes as f64 * frac) as u64).max(1);
                    }
                    bytes
                }
            };
            let saving = (hit.sub_cost - self.backend.scan_secs(scan_bytes, block)).max(0.0);
            // Which fragments were (or would have been) hit, per partition.
            let sub = deepsea_engine::subquery::subplan_at(plan, &hit.path);
            let qsig = sub.and_then(Signature::of);
            let mut ranges = Vec::new();
            for ps in view.partitions.values() {
                let needed = qsig
                    .as_ref()
                    .and_then(|s| s.range_on_attr(&ps.attr))
                    .and_then(|r| clamp_to_domain(r, &ps.domain))
                    .unwrap_or(ps.domain);
                ranges.push((ps.attr.clone(), needed));
            }
            match updates.get_mut(&hit.view) {
                Some(prev) if prev.0 >= saving => {}
                slot => {
                    let update = (saving, ranges);
                    match slot {
                        Some(prev) => *prev = update,
                        None => {
                            updates.insert(hit.view, update);
                        }
                    }
                }
            }
        }
        ctx.trace.matching.views_updated = updates.len() as u32;
        for (vid, (saving, ranges)) in updates {
            let tmax = self.config.tmax;
            let view = self.registry.view_mut(vid);
            view.stats.record_use(tnow, saving);
            view.stats.prune(tnow, tmax);
            for (attr, needed) in ranges {
                if let Some(ps) = view.partitions.get_mut(&attr) {
                    for frag in &mut ps.fragments {
                        if frag.interval.overlaps(&needed) {
                            frag.stats.record_hit(tnow);
                            frag.stats.prune(tnow, tmax);
                        }
                    }
                }
            }
        }
    }

    /// The fraction of the view a partitioned access needs for the given
    /// compensation ranges (1.0 when no applicable range is known).
    fn comp_range_fraction(&self, view: &ViewMeta, comp: &Compensation) -> f64 {
        let mut frac: f64 = 1.0;
        for (col, lo, hi) in &comp.ranges {
            let domain = view
                .partitions
                .values()
                .find(|p| attr_matches(&p.attr, col))
                .map(|p| p.domain)
                .or_else(|| self.attr_domain(&view.plan, col));
            if let Some(d) = domain {
                if let Some(iv) = clamp_to_domain((*lo, *hi), &d) {
                    frac = frac.min(iv.width() as f64 / d.width() as f64);
                }
            }
        }
        frac
    }
}

#[cfg(test)]
mod tests {
    use deepsea_engine::plan::AggExpr;
    use deepsea_engine::plan::LogicalPlan;
    use deepsea_relation::Predicate;

    use super::DeepSea;

    /// `match_roots` must expose joins/aggregates/projections and any chain
    /// of selections stacked on one, but not bare scans or selections over
    /// scans.
    #[test]
    fn match_roots_accepts_nested_selects_over_shapes() {
        let join = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let nested = join
            .clone()
            .select(Predicate::range("a.k", 0, 10))
            .select(Predicate::range("a.k", 2, 8));
        let agg = nested
            .clone()
            .aggregate(vec!["a.k"], vec![AggExpr::count("cnt")]);

        let roots = DeepSea::match_roots(&agg);
        // The aggregate, the double- and single-selected join, and the join.
        assert_eq!(
            roots.len(),
            4,
            "{:?}",
            roots.iter().map(|(p, _)| p).collect::<Vec<_>>()
        );
        assert!(roots.iter().any(|(_, p)| *p == &agg));
        assert!(roots.iter().any(|(_, p)| *p == &nested));
        assert!(roots.iter().any(|(_, p)| *p == &join));
    }

    #[test]
    fn match_roots_rejects_scans_and_selects_over_scans() {
        let plan = LogicalPlan::scan("a").select(Predicate::range("a.k", 0, 10));
        assert!(DeepSea::match_roots(&plan).is_empty());
    }
}
