//! Crash-restart durability for the catalog: journal records, snapshots, and
//! cold-start replay.
//!
//! Every catalog mutation the driver performs — registering a view, tracking
//! a partition or fragment, materializing, evicting, quarantining — is
//! appended to a [`CatalogJournal`] at its commit point. The convention is
//! *file-system mutation first, journal record after*: a crash between the
//! two leaves either an orphaned file (created but never recorded — the fsck
//! sweep garbage-collects it) or a dangling catalog entry (deleted but the
//! delete record lost — the fsck sweep quarantines its view). See
//! `DeepSea::recover` for the cold-start path.
//!
//! Statistics that accrue on *every* query (benefit events, fragment hits)
//! are too chatty to journal per event; they ride in periodic
//! [`CatalogRecord::StatsCheckpoint`] records instead. Statistics recorded
//! after the last checkpoint are lost in a crash — which can only make
//! recovered views look slightly colder, never change an answer, because
//! views accelerate queries but never gate them.

use deepsea_engine::{LogicalPlan, Signature};
use deepsea_relation::Schema;
use deepsea_storage::{FileId, Journal, Lsn};

use crate::interval::Interval;
use crate::registry::{PartitionState, ViewRegistry};
use crate::stats::{LogicalTime, ViewStats};

/// The journal the driver appends [`CatalogRecord`]s to, snapshotting full
/// [`CatalogSnapshot`]s at the configured cadence.
pub type CatalogJournal = Journal<CatalogRecord, CatalogSnapshot>;

/// A full-state checkpoint: replay starts from the latest snapshot and
/// applies only the record suffix after it.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    /// The registry (views, partitions, fragments, statistics, filter tree).
    pub registry: ViewRegistry,
    /// The logical clock at snapshot time.
    pub clock: LogicalTime,
}

/// Per-view statistics captured by a [`CatalogRecord::StatsCheckpoint`].
#[derive(Debug, Clone)]
pub struct ViewStatsEntry {
    /// The view's canonical signature key.
    pub view: String,
    /// Its `(S, COST, T, B)` statistics, benefit events included.
    pub stats: ViewStats,
    /// Fragment hit timestamps, as `(attribute, interval, hits)`.
    pub fragment_hits: Vec<(String, Interval, Vec<LogicalTime>)>,
}

/// One durable catalog mutation. Views are identified by their canonical
/// signature key and fragments by `(attribute, interval)` — both stable
/// across replay, unlike ids assigned at runtime (which replay reproduces
/// deterministically by applying records in LSN order).
#[derive(Debug, Clone)]
pub enum CatalogRecord {
    /// A view candidate entered the registry (or a quarantined view's shape
    /// reappeared and was re-admitted). `first_use` carries the first-query
    /// benefit event recorded for brand-new views.
    ViewRegistered {
        /// The view's defining plan.
        plan: LogicalPlan,
        /// Its signature.
        sig: Signature,
        /// Estimated size in simulated bytes.
        est_size: u64,
        /// Estimated recreation cost in seconds.
        est_cost: f64,
        /// Estimated by-product materialization overhead in seconds.
        est_overhead: f64,
        /// `(t, saving)` of the registering query's own use, for new views.
        first_use: Option<(LogicalTime, f64)>,
    },
    /// A partition `P(V, A)` started being tracked.
    PartitionTracked {
        /// Owning view's canonical key.
        view: String,
        /// Partition attribute.
        attr: String,
        /// The attribute's domain.
        domain: Interval,
    },
    /// A split point was recorded for initial partitioning.
    BoundaryAdded {
        /// Owning view's canonical key.
        view: String,
        /// Partition attribute.
        attr: String,
        /// The boundary point.
        point: i64,
    },
    /// A candidate fragment started being tracked (Definition 7).
    FragmentTracked {
        /// Owning view's canonical key.
        view: String,
        /// Partition attribute.
        attr: String,
        /// The fragment's interval.
        interval: Interval,
        /// Estimated size in simulated bytes.
        est_size: u64,
        /// Hit recorded at tracking time, when the tracking query's range
        /// contained the fragment.
        hit: Option<LogicalTime>,
    },
    /// A view was materialized whole (un-partitioned) into `file`.
    ViewMaterialized {
        /// The view's canonical key.
        view: String,
        /// Backing file.
        file: FileId,
        /// Measured size in simulated bytes.
        size: u64,
        /// Measured recreation cost in seconds.
        cost: f64,
        /// Measured creation overhead in seconds.
        overhead: f64,
        /// Output schema.
        schema: Schema,
        /// Datanodes the file was placed on (primary first). Empty when the
        /// FS is not sharded. Replayed into the cluster map by
        /// `DeepSea::recover` so routing survives a crash.
        nodes: Vec<u32>,
    },
    /// A fragment was materialized into `file` — the per-fragment commit
    /// point of partitioned materialization and repartitioning.
    FragmentMaterialized {
        /// Owning view's canonical key.
        view: String,
        /// Partition attribute.
        attr: String,
        /// The fragment's interval.
        interval: Interval,
        /// Backing file.
        file: FileId,
        /// Measured size in simulated bytes.
        size: u64,
        /// Output schema, carried until the view has one.
        schema: Option<Schema>,
        /// Datanodes the file was placed on (primary first). Empty when the
        /// FS is not sharded.
        nodes: Vec<u32>,
    },
    /// A view's measured statistics replaced its estimates (the end of a
    /// partitioned materialization).
    ViewStatsMeasured {
        /// The view's canonical key.
        view: String,
        /// Measured size in simulated bytes.
        size: u64,
        /// Measured recreation cost in seconds.
        cost: f64,
        /// Measured creation overhead in seconds.
        overhead: f64,
        /// Output schema.
        schema: Schema,
    },
    /// A view's whole-file copy was evicted.
    ViewEvicted {
        /// The view's canonical key.
        view: String,
    },
    /// A materialized fragment was evicted (or dropped by a split/merge).
    FragmentEvicted {
        /// Owning view's canonical key.
        view: String,
        /// Partition attribute.
        attr: String,
        /// The fragment's interval.
        interval: Interval,
    },
    /// A view was quarantined after a permanent I/O failure.
    ViewQuarantined {
        /// The view's canonical key.
        view: String,
        /// Logical time of the quarantine.
        at: LogicalTime,
    },
    /// Periodic statistics checkpoint: benefit events and fragment hits for
    /// every tracked view. Replay overwrites statistics with these values but
    /// never touches structural state (materialization, quarantine, the
    /// filter tree).
    StatsCheckpoint {
        /// Logical time of the checkpoint.
        at: LogicalTime,
        /// Per-view statistics.
        views: Vec<ViewStatsEntry>,
    },
    /// A query finished processing; recovers the logical clock.
    QueryCommitted {
        /// The committed query's logical time.
        tnow: LogicalTime,
    },
}

/// Build a [`CatalogRecord::StatsCheckpoint`] from the registry's current
/// statistics.
pub fn stats_checkpoint(registry: &ViewRegistry, at: LogicalTime) -> CatalogRecord {
    let views = registry
        .iter()
        .map(|v| ViewStatsEntry {
            view: v.key.clone(),
            stats: v.stats.clone(),
            fragment_hits: v
                .partitions
                .values()
                .flat_map(|ps| {
                    ps.fragments
                        .iter()
                        .map(|f| (ps.attr.clone(), f.interval, f.stats.hits.clone()))
                })
                .collect(),
        })
        .collect();
    CatalogRecord::StatsCheckpoint { at, views }
}

/// Rebuild the registry and logical clock from a snapshot and the record
/// suffix after it — the read-only half of cold-start recovery. Applying the
/// same `(snapshot, records)` twice yields identical state, which is what
/// makes recovery idempotent.
pub fn replay_catalog(
    snapshot: Option<CatalogSnapshot>,
    records: &[(Lsn, CatalogRecord)],
) -> (ViewRegistry, LogicalTime) {
    let (mut registry, mut clock) = match snapshot {
        Some(s) => (s.registry, s.clock),
        None => (ViewRegistry::new(), 0),
    };
    for (_, record) in records {
        apply_record(&mut registry, &mut clock, record);
    }
    (registry, clock)
}

/// Apply one record to the registry being rebuilt. Records referencing
/// unknown views or partitions are skipped — they cannot arise from a
/// well-formed journal, but replay must never panic on a torn tail.
fn apply_record(registry: &mut ViewRegistry, clock: &mut LogicalTime, record: &CatalogRecord) {
    match record {
        CatalogRecord::ViewRegistered {
            plan,
            sig,
            est_size,
            est_cost,
            est_overhead,
            first_use,
        } => {
            let is_new = registry.by_key(&sig.canonical_key()).is_none();
            let vid = registry.register(
                plan.clone(),
                sig.clone(),
                *est_size,
                *est_cost,
                *est_overhead,
            );
            if is_new {
                if let Some((t, saving)) = first_use {
                    registry.view_mut(vid).stats.record_use(*t, *saving);
                }
            }
        }
        CatalogRecord::PartitionTracked { view, attr, domain } => {
            if let Some(vid) = registry.by_key(view) {
                registry
                    .view_mut(vid)
                    .partitions
                    .entry(attr.clone())
                    .or_insert_with(|| PartitionState::new(attr.clone(), *domain));
            }
        }
        CatalogRecord::BoundaryAdded { view, attr, point } => {
            if let Some(ps) = partition_mut(registry, view, attr) {
                ps.add_boundary(*point);
            }
        }
        CatalogRecord::FragmentTracked {
            view,
            attr,
            interval,
            est_size,
            hit,
        } => {
            if let Some(ps) = partition_mut(registry, view, attr) {
                let is_new = ps.find(interval).is_none();
                let fid = ps.track(*interval, *est_size);
                if is_new {
                    if let Some(t) = hit {
                        ps.frag_mut(fid).expect("just tracked").stats.record_hit(*t);
                    }
                }
            }
        }
        CatalogRecord::ViewMaterialized {
            view,
            file,
            size,
            cost,
            overhead,
            schema,
            // Placement is namenode state, not catalog state: `recover`
            // replays it into the cluster map, never into the registry.
            nodes: _,
        } => {
            if let Some(vid) = registry.by_key(view) {
                let v = registry.view_mut(vid);
                v.whole_file = Some(*file);
                v.schema = Some(schema.clone());
                v.stats.set_measured(*size, *cost);
                v.creation_overhead = *overhead;
            }
        }
        CatalogRecord::FragmentMaterialized {
            view,
            attr,
            interval,
            file,
            size,
            schema,
            nodes: _,
        } => {
            if let Some(vid) = registry.by_key(view) {
                let v = registry.view_mut(vid);
                if v.schema.is_none() {
                    v.schema = schema.clone();
                }
                if let Some(ps) = v.partitions.get_mut(attr) {
                    let fid = ps.track(*interval, *size);
                    let f = ps.frag_mut(fid).expect("just tracked");
                    f.file = Some(*file);
                    f.size = *size;
                }
            }
        }
        CatalogRecord::ViewStatsMeasured {
            view,
            size,
            cost,
            overhead,
            schema,
        } => {
            if let Some(vid) = registry.by_key(view) {
                let v = registry.view_mut(vid);
                v.schema = Some(schema.clone());
                v.stats.set_measured(*size, *cost);
                v.creation_overhead = *overhead;
            }
        }
        CatalogRecord::ViewEvicted { view } => {
            if let Some(vid) = registry.by_key(view) {
                registry.view_mut(vid).whole_file = None;
            }
        }
        CatalogRecord::FragmentEvicted {
            view,
            attr,
            interval,
        } => {
            if let Some(ps) = partition_mut(registry, view, attr) {
                if let Some(f) = ps.find_mut(interval) {
                    f.file = None;
                }
            }
        }
        CatalogRecord::ViewQuarantined { view, at } => {
            if let Some(vid) = registry.by_key(view) {
                registry.quarantine(vid, *at);
            }
        }
        CatalogRecord::StatsCheckpoint { at: _, views } => {
            for entry in views {
                let Some(vid) = registry.by_key(&entry.view) else {
                    continue;
                };
                let v = registry.view_mut(vid);
                v.stats = entry.stats.clone();
                for (attr, interval, hits) in &entry.fragment_hits {
                    if let Some(f) = v
                        .partitions
                        .get_mut(attr)
                        .and_then(|ps| ps.find_mut(interval))
                    {
                        f.stats.hits = hits.clone();
                    }
                }
            }
        }
        CatalogRecord::QueryCommitted { tnow } => {
            *clock = *tnow;
        }
    }
}

fn partition_mut<'a>(
    registry: &'a mut ViewRegistry,
    view: &str,
    attr: &str,
) -> Option<&'a mut PartitionState> {
    let vid = registry.by_key(view)?;
    registry.view_mut(vid).partitions.get_mut(attr)
}

/// What the fsck sweep of `DeepSea::recover` found and repaired, plus replay
/// provenance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FsckReport {
    /// Journal records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// The LSN the loaded snapshot covered up to, if one existed.
    pub snapshot_lsn: Option<Lsn>,
    /// Files in the FS referenced by no live catalog entry, deleted.
    pub orphan_files: u32,
    /// Simulated bytes those orphans held.
    pub orphan_bytes: u64,
    /// Simulated seconds charged for deleting them.
    pub gc_secs: f64,
    /// Catalog-referenced files missing from the FS.
    pub missing_files: u32,
    /// Catalog-referenced files failing checksum verification.
    pub corrupt_files: u32,
    /// Views quarantined because their backing files were missing/corrupt.
    pub quarantined_views: u32,
    /// Pool bytes those quarantines released.
    pub quarantined_bytes: u64,
    /// Journal-append retries absorbed while journaling fsck quarantines.
    pub journal_retries: u32,
    /// Simulated seconds of backoff those retries cost.
    pub journal_penalty_secs: f64,
    /// Reconciled pool usage after the sweep.
    pub pool_used: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_storage::FaultConfig;
    use deepsea_storage::FaultInjector;

    fn join_plan() -> (LogicalPlan, Signature) {
        let plan = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        let sig = Signature::of(&plan).unwrap();
        (plan, sig)
    }

    fn registered(sig: &Signature, plan: &LogicalPlan) -> CatalogRecord {
        CatalogRecord::ViewRegistered {
            plan: plan.clone(),
            sig: sig.clone(),
            est_size: 1000,
            est_cost: 10.0,
            est_overhead: 2.0,
            first_use: Some((1, 5.0)),
        }
    }

    #[test]
    fn replay_rebuilds_structure_and_stats() {
        let (plan, sig) = join_plan();
        let key = sig.canonical_key();
        let j: CatalogJournal = Journal::new();
        j.append(registered(&sig, &plan)).unwrap();
        j.append(CatalogRecord::PartitionTracked {
            view: key.clone(),
            attr: "a.k".into(),
            domain: Interval::new(0, 99),
        })
        .unwrap();
        j.append(CatalogRecord::BoundaryAdded {
            view: key.clone(),
            attr: "a.k".into(),
            point: 50,
        })
        .unwrap();
        j.append(CatalogRecord::FragmentTracked {
            view: key.clone(),
            attr: "a.k".into(),
            interval: Interval::new(0, 49),
            est_size: 500,
            hit: Some(1),
        })
        .unwrap();
        j.append(CatalogRecord::FragmentMaterialized {
            view: key.clone(),
            attr: "a.k".into(),
            interval: Interval::new(0, 49),
            file: FileId(3),
            size: 480,
            schema: None,
            nodes: vec![1, 2],
        })
        .unwrap();
        j.append(CatalogRecord::QueryCommitted { tnow: 1 }).unwrap();

        let (snap, records) = j.replay();
        let (reg, clock) = replay_catalog(snap.map(|(_, s)| s), &records);
        assert_eq!(clock, 1);
        let vid = reg.by_key(&key).expect("view replayed");
        let v = reg.view(vid);
        assert_eq!(v.stats.events.len(), 1, "first-use event replayed");
        let ps = v.partitions.get("a.k").expect("partition replayed");
        assert_eq!(ps.boundaries, vec![50]);
        let f = ps.find(&Interval::new(0, 49)).expect("fragment replayed");
        assert_eq!(f.file, Some(FileId(3)));
        assert_eq!(f.size, 480);
        assert_eq!(f.stats.raw_hits(), 1);
        assert_eq!(reg.pool_bytes(), 480);

        // Idempotent: replaying the same journal again yields identical state.
        let (snap2, records2) = j.replay();
        let (reg2, _) = replay_catalog(snap2.map(|(_, s)| s), &records2);
        assert_eq!(reg.state_digest(), reg2.state_digest());
    }

    #[test]
    fn replay_applies_evictions_and_quarantine() {
        let (plan, sig) = join_plan();
        let key = sig.canonical_key();
        let j: CatalogJournal = Journal::new();
        j.append(registered(&sig, &plan)).unwrap();
        j.append(CatalogRecord::ViewMaterialized {
            view: key.clone(),
            file: FileId(9),
            size: 1200,
            cost: 11.0,
            overhead: 3.0,
            schema: Schema::new(vec![]),
            nodes: Vec::new(),
        })
        .unwrap();
        j.append(CatalogRecord::ViewEvicted { view: key.clone() })
            .unwrap();
        j.append(CatalogRecord::ViewQuarantined {
            view: key.clone(),
            at: 7,
        })
        .unwrap();
        let (snap, records) = j.replay();
        let (reg, _) = replay_catalog(snap.map(|(_, s)| s), &records);
        let v = reg.view(reg.by_key(&key).unwrap());
        assert_eq!(v.whole_file, None);
        assert!(v.is_quarantined());
        assert_eq!(v.quarantined_at, Some(7));
        assert!(v.stats.measured, "measured stats survive quarantine");
        assert_eq!(v.stats.size, 1200);
        assert_eq!(reg.pool_bytes(), 0);
    }

    #[test]
    fn stats_checkpoint_overwrites_stats_but_not_structure() {
        let (plan, sig) = join_plan();
        let key = sig.canonical_key();
        let mut live = ViewRegistry::new();
        let vid = live.register(plan.clone(), sig.clone(), 1000, 10.0, 2.0);
        live.view_mut(vid).stats.record_use(3, 40.0);
        live.view_mut(vid).stats.record_use(4, 41.0);
        live.quarantine(vid, 5);
        let ckpt = stats_checkpoint(&live, 5);

        // Replay onto a registry that knows the view but has stale stats and
        // is *not* quarantined: the checkpoint must refresh statistics
        // without quarantining (structure is journaled by its own records).
        let j: CatalogJournal = Journal::new();
        j.append(registered(&sig, &plan)).unwrap();
        j.append(ckpt).unwrap();
        let (snap, records) = j.replay();
        let (reg, _) = replay_catalog(snap.map(|(_, s)| s), &records);
        let v = reg.view(reg.by_key(&key).unwrap());
        assert_eq!(v.stats.events.len(), 2, "checkpoint stats replayed");
        assert!(!v.is_quarantined(), "checkpoint never touches quarantine");
    }

    #[test]
    fn snapshot_plus_suffix_replays_from_snapshot() {
        let (plan, sig) = join_plan();
        let key = sig.canonical_key();
        let mut reg = ViewRegistry::new();
        reg.register(plan.clone(), sig.clone(), 1000, 10.0, 2.0);
        let j: CatalogJournal = Journal::new();
        j.install_snapshot(CatalogSnapshot {
            registry: reg.clone(),
            clock: 3,
        });
        j.append(CatalogRecord::QueryCommitted { tnow: 4 }).unwrap();
        let (snap, records) = j.replay();
        assert_eq!(records.len(), 1);
        let (rec, clock) = replay_catalog(snap.map(|(_, s)| s), &records);
        assert_eq!(clock, 4);
        assert!(rec.by_key(&key).is_some());
    }

    #[test]
    fn torn_records_for_unknown_views_are_skipped() {
        let records = vec![
            (
                Lsn(0),
                CatalogRecord::ViewEvicted {
                    view: "nope".into(),
                },
            ),
            (
                Lsn(1),
                CatalogRecord::FragmentEvicted {
                    view: "nope".into(),
                    attr: "a".into(),
                    interval: Interval::new(0, 1),
                },
            ),
            (Lsn(2), CatalogRecord::QueryCommitted { tnow: 2 }),
        ];
        let (reg, clock) = replay_catalog(None, &records);
        assert!(reg.is_empty());
        assert_eq!(clock, 2);
    }

    #[test]
    fn journal_faults_do_not_lose_forced_records() {
        let j: CatalogJournal = Journal::with_faults(FaultInjector::new(
            FaultConfig::seeded(5).with_transient_writes(1.0),
        ));
        assert!(j.append(CatalogRecord::QueryCommitted { tnow: 1 }).is_err());
        j.append_infallible(CatalogRecord::QueryCommitted { tnow: 1 });
        let (_, records) = j.replay();
        assert_eq!(records.len(), 1);
    }
}
