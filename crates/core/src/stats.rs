//! View and fragment statistics, the decay function, accumulated benefit and
//! the cost–benefit value `Φ` (§6 and §7.1 of the paper).
//!
//! Time is logical: the sequence number of the query in the workload, 1-based
//! (`tnow >= 1`), matching the paper's use of submission order in the decay
//! function `DEC(tnow, t) = t/tnow` (0 once older than `tmax`).

/// Logical timestamp: the 1-based sequence number of a query.
pub type LogicalTime = u64;

/// The decay function of §7.1:
///
/// ```text
/// DEC(tnow, t) = 0          if tnow - t > tmax
///                t / tnow   otherwise
/// ```
pub fn decay(tnow: LogicalTime, t: LogicalTime, tmax: LogicalTime) -> f64 {
    debug_assert!(t <= tnow, "benefit recorded in the future");
    if tnow - t > tmax || tnow == 0 {
        0.0
    } else {
        t as f64 / tnow as f64
    }
}

/// One recorded (potential) use of a view: when, and how much execution time
/// it saved (or would have saved).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenefitEvent {
    /// When the view was (or could have been) used.
    pub t: LogicalTime,
    /// `COST(Q) - COST(Q/V)` at that time, clamped at 0.
    pub saving: f64,
}

/// Statistics kept per view (candidate or materialized): `(S, COST, T, B)` of
/// Definition 5.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewStats {
    /// Storage size `S(V)` in simulated bytes (estimated until first
    /// materialization, then actual).
    pub size: u64,
    /// Creation cost `COST(V)` in seconds (estimated, then actual).
    pub cost: f64,
    /// Whether `size`/`cost` are measured rather than estimated.
    pub measured: bool,
    /// Recorded benefit events (timestamps `T` with savings `B`).
    pub events: Vec<BenefitEvent>,
}

impl ViewStats {
    /// Fresh statistics from initial estimates.
    pub fn estimated(size: u64, cost: f64) -> Self {
        Self {
            size,
            cost,
            measured: false,
            events: Vec::new(),
        }
    }

    /// Record that the view was (or could have been) used at `t`, saving
    /// `saving` seconds.
    pub fn record_use(&mut self, t: LogicalTime, saving: f64) {
        self.events.push(BenefitEvent {
            t,
            saving: saving.max(0.0),
        });
    }

    /// Replace estimates with measured values (idempotent).
    pub fn set_measured(&mut self, size: u64, cost: f64) {
        self.size = size;
        self.cost = cost;
        self.measured = true;
    }

    /// Accumulated benefit `B(V, tnow) = Σ saving · DEC(tnow, t)`.
    pub fn benefit(&self, tnow: LogicalTime, tmax: LogicalTime) -> f64 {
        self.events
            .iter()
            .map(|e| e.saving * decay(tnow, e.t, tmax))
            .sum()
    }

    /// Benefit without the decay function (used by the Nectar+ baseline).
    pub fn undecayed_benefit(&self) -> f64 {
        self.events.iter().map(|e| e.saving).sum()
    }

    /// The most recent single saving (used by the Nectar baseline, which
    /// does not accumulate benefit).
    pub fn last_saving(&self) -> f64 {
        self.events.last().map(|e| e.saving).unwrap_or(0.0)
    }

    /// Timestamp of the most recent use.
    pub fn last_use(&self) -> Option<LogicalTime> {
        self.events.last().map(|e| e.t)
    }

    /// Drop events that have fully decayed (bounds memory on long workloads).
    pub fn prune(&mut self, tnow: LogicalTime, tmax: LogicalTime) {
        self.events.retain(|e| tnow - e.t <= tmax);
    }

    /// The view value `Φ(V, tnow) = COST(V) · B(V, tnow) / S(V)` (§7.1).
    pub fn phi(&self, tnow: LogicalTime, tmax: LogicalTime) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        self.cost * self.benefit(tnow, tmax) / self.size as f64
    }
}

/// Statistics kept per fragment: `(S, T)` of Definition 5 — the fragment's
/// cost and benefit are derived from its view's.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FragStats {
    /// Hit timestamps `T(I)`.
    pub hits: Vec<LogicalTime>,
}

impl FragStats {
    /// Record a hit (the fragment was or could have been used) at `t`.
    pub fn record_hit(&mut self, t: LogicalTime) {
        self.hits.push(t);
    }

    /// Decayed hit count `H(I) = Σ DEC(tnow, t)` (§7.1).
    pub fn decayed_hits(&self, tnow: LogicalTime, tmax: LogicalTime) -> f64 {
        self.hits.iter().map(|&t| decay(tnow, t, tmax)).sum()
    }

    /// Raw (undecayed) hit count.
    pub fn raw_hits(&self) -> usize {
        self.hits.len()
    }

    /// Most recent hit.
    pub fn last_hit(&self) -> Option<LogicalTime> {
        self.hits.last().copied()
    }

    /// Drop hits that have fully decayed.
    pub fn prune(&mut self, tnow: LogicalTime, tmax: LogicalTime) {
        self.hits.retain(|&t| tnow - t <= tmax);
    }

    /// Accumulated fragment benefit (§7.1):
    ///
    /// ```text
    /// B(I, tnow) = Σ_hits (S(I)/S(V)) · COST(V) · DEC(tnow, t)
    /// ```
    pub fn benefit(
        &self,
        frag_size: u64,
        view_size: u64,
        view_cost: f64,
        tnow: LogicalTime,
        tmax: LogicalTime,
    ) -> f64 {
        if view_size == 0 {
            return 0.0;
        }
        let per_hit = (frag_size as f64 / view_size as f64) * view_cost;
        per_hit * self.decayed_hits(tnow, tmax)
    }

    /// Fragment value `Φ(I, tnow) = COST(V) · B(I, tnow) / S(I)` (§7.1).
    pub fn phi(
        &self,
        frag_size: u64,
        view_size: u64,
        view_cost: f64,
        tnow: LogicalTime,
        tmax: LogicalTime,
    ) -> f64 {
        if frag_size == 0 {
            return 0.0;
        }
        view_cost * self.benefit(frag_size, view_size, view_cost, tnow, tmax) / frag_size as f64
    }

    /// Fragment value computed from an externally *adjusted* decayed hit
    /// count (the MLE-smoothed `HA(I)` of the probabilistic model, §7.1).
    pub fn phi_with_hits(
        adjusted_hits: f64,
        frag_size: u64,
        view_size: u64,
        view_cost: f64,
    ) -> f64 {
        if frag_size == 0 || view_size == 0 {
            return 0.0;
        }
        let benefit = (frag_size as f64 / view_size as f64) * view_cost * adjusted_hits;
        view_cost * benefit / frag_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_proportional_and_cutoff() {
        assert!((decay(10, 5, 100) - 0.5).abs() < 1e-12);
        assert!((decay(10, 10, 100) - 1.0).abs() < 1e-12);
        assert_eq!(decay(200, 5, 100), 0.0, "older than tmax times out");
        assert!(decay(105, 5, 100) > 0.0, "exactly tmax old still counts");
    }

    #[test]
    fn decay_is_monotone_in_recency() {
        // More recent events decay less.
        assert!(decay(100, 90, 1000) > decay(100, 10, 1000));
    }

    #[test]
    fn view_benefit_accumulates_with_decay() {
        let mut s = ViewStats::estimated(100, 10.0);
        s.record_use(5, 100.0);
        s.record_use(10, 100.0);
        let b = s.benefit(10, 1000);
        assert!((b - (100.0 * 0.5 + 100.0)).abs() < 1e-9);
        assert_eq!(s.undecayed_benefit(), 200.0);
        assert_eq!(s.last_saving(), 100.0);
        assert_eq!(s.last_use(), Some(10));
    }

    #[test]
    fn negative_savings_clamped() {
        let mut s = ViewStats::estimated(100, 10.0);
        s.record_use(1, -50.0);
        assert_eq!(s.benefit(1, 100), 0.0);
    }

    #[test]
    fn phi_prefers_expensive_beneficial_small() {
        let tnow = 10;
        let mut cheap = ViewStats::estimated(1000, 1.0);
        let mut expensive = ViewStats::estimated(1000, 100.0);
        cheap.record_use(10, 50.0);
        expensive.record_use(10, 50.0);
        assert!(expensive.phi(tnow, 100) > cheap.phi(tnow, 100));

        let mut small = ViewStats::estimated(10, 1.0);
        let mut big = ViewStats::estimated(1000, 1.0);
        small.record_use(10, 50.0);
        big.record_use(10, 50.0);
        assert!(small.phi(tnow, 100) > big.phi(tnow, 100));
    }

    #[test]
    fn measured_replaces_estimates() {
        let mut s = ViewStats::estimated(100, 10.0);
        assert!(!s.measured);
        s.set_measured(250, 25.0);
        assert!(s.measured);
        assert_eq!(s.size, 250);
        assert_eq!(s.cost, 25.0);
    }

    #[test]
    fn prune_drops_expired_events() {
        let mut s = ViewStats::estimated(1, 1.0);
        s.record_use(1, 1.0);
        s.record_use(90, 1.0);
        s.prune(100, 50);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].t, 90);
    }

    #[test]
    fn frag_benefit_scales_with_relative_size() {
        let mut f = FragStats::default();
        f.record_hit(10);
        let small = f.benefit(10, 100, 50.0, 10, 100);
        let large = f.benefit(50, 100, 50.0, 10, 100);
        assert!(large > small);
        assert!((small - 0.1 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn frag_phi_and_adjusted_agree_on_raw_hits() {
        let mut f = FragStats::default();
        f.record_hit(10);
        f.record_hit(10);
        let tnow = 10;
        let direct = f.phi(10, 100, 50.0, tnow, 100);
        let via_hits = FragStats::phi_with_hits(f.decayed_hits(tnow, 100), 10, 100, 50.0);
        assert!((direct - via_hits).abs() < 1e-9);
    }

    #[test]
    fn zero_sizes_are_safe() {
        let s = ViewStats::estimated(0, 10.0);
        assert_eq!(s.phi(1, 10), 0.0);
        let f = FragStats::default();
        assert_eq!(f.phi(0, 100, 1.0, 1, 10), 0.0);
        assert_eq!(f.benefit(10, 0, 1.0, 1, 10), 0.0);
        assert_eq!(FragStats::phi_with_hits(1.0, 0, 100, 1.0), 0.0);
    }

    #[test]
    fn frag_hit_bookkeeping() {
        let mut f = FragStats::default();
        assert_eq!(f.last_hit(), None);
        f.record_hit(3);
        f.record_hit(7);
        assert_eq!(f.raw_hits(), 2);
        assert_eq!(f.last_hit(), Some(7));
        f.prune(10, 5); // hit at 3 is 7 old (> 5); hit at 7 is 3 old (kept)
        assert_eq!(f.raw_hits(), 1);
    }
}
