//! Fragment metadata.

use deepsea_storage::FileId;

use crate::interval::Interval;
use crate::stats::FragStats;

/// Identifier of a fragment within one partition (stable across splits of
/// *other* fragments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FragmentId(pub u64);

/// A fragment of a partitioned view — either materialized (has a file in the
/// pool) or a tracked candidate (statistics only, per Definition 5's PSTAT).
#[derive(Debug, Clone)]
pub struct FragmentMeta {
    /// Identifier within the partition.
    pub id: FragmentId,
    /// The interval of partition-key values this fragment holds.
    pub interval: Interval,
    /// Backing file while materialized.
    pub file: Option<FileId>,
    /// Simulated size in bytes: actual while materialized, estimated
    /// otherwise (§7.2's overlap-weighted estimate).
    pub size: u64,
    /// Hit statistics.
    pub stats: FragStats,
}

impl FragmentMeta {
    /// A new (not yet materialized) fragment record.
    pub fn candidate(id: FragmentId, interval: Interval, est_size: u64) -> Self {
        Self {
            id,
            interval,
            file: None,
            size: est_size,
            stats: FragStats::default(),
        }
    }

    /// Is the fragment currently materialized in the pool?
    pub fn is_materialized(&self) -> bool {
        self.file.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_starts_unmaterialized() {
        let f = FragmentMeta::candidate(FragmentId(1), Interval::new(0, 9), 100);
        assert!(!f.is_materialized());
        assert_eq!(f.size, 100);
        assert_eq!(f.stats.raw_hits(), 0);
    }
}
