//! Factory functions for the paper's system variants.
//!
//! | Abbrev. | System | Where used |
//! |---|---|---|
//! | `H`  | vanilla Hive, no materialization        | Fig. 5a, 7 |
//! | `NP` | materialization without partitioning    | Fig. 5a, 7, 10 |
//! | `N`  | Nectar selection strategy               | Fig. 5b, 8 |
//! | `N+` | Nectar + accumulated benefit            | Fig. 5b |
//! | `E-k`| equi-depth partitioning, k fragments    | Fig. 6, 7, 10 |
//! | `NR` | DeepSea without repartitioning          | Fig. 10 |
//! | `DS` | full DeepSea                            | everywhere |

use crate::config::DeepSeaConfig;
use crate::policy::{PartitionPolicy, ValueModel};

/// Vanilla Hive: every query runs from base tables.
pub fn hive() -> DeepSeaConfig {
    DeepSeaConfig::default().with_policy(PartitionPolicy::NoMaterialization)
}

/// `NP`: materialize whole views, never partition (ReStore-like, but with
/// DeepSea's logical matching).
pub fn non_partitioned() -> DeepSeaConfig {
    DeepSeaConfig::default().with_policy(PartitionPolicy::NoPartition)
}

/// `DS`: full DeepSea — progressive, overlapping, MLE-smoothed.
pub fn deepsea() -> DeepSeaConfig {
    DeepSeaConfig::default()
}

/// `DS` without the probabilistic fragment-benefit model (ablation).
pub fn deepsea_no_mle() -> DeepSeaConfig {
    DeepSeaConfig::default().with_value_model(ValueModel::DeepSea { use_mle: false })
}

/// `NR`: DeepSea whose initial partitioning is final (§10.4).
pub fn no_repartitioning() -> DeepSeaConfig {
    DeepSeaConfig::default().with_policy(PartitionPolicy::Progressive {
        overlapping: true,
        repartition: false,
    })
}

/// DeepSea restricted to strictly horizontal (non-overlapping) refinement.
pub fn horizontal_only() -> DeepSeaConfig {
    DeepSeaConfig::default().with_policy(PartitionPolicy::Progressive {
        overlapping: false,
        repartition: true,
    })
}

/// `E-k`: equi-depth partitioning with `k` fragments per view (§10.2).
pub fn equi_depth(k: usize) -> DeepSeaConfig {
    DeepSeaConfig::default().with_policy(PartitionPolicy::EquiDepth { fragments: k })
}

/// `N`: Nectar's selection strategy over the same partitioned infrastructure.
pub fn nectar() -> DeepSeaConfig {
    DeepSeaConfig::default().with_value_model(ValueModel::Nectar)
}

/// `N+`: Nectar extended with accumulated benefit (§10.1).
pub fn nectar_plus() -> DeepSeaConfig {
    DeepSeaConfig::default().with_value_model(ValueModel::NectarPlus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_have_expected_flags() {
        assert!(!hive().partition_policy.materializes());
        assert!(non_partitioned().partition_policy.materializes());
        assert!(!non_partitioned().partition_policy.partitions());
        assert!(deepsea().partition_policy.repartitions());
        assert!(!no_repartitioning().partition_policy.repartitions());
        assert!(!horizontal_only().partition_policy.overlapping());
        assert!(matches!(
            equi_depth(15).partition_policy,
            PartitionPolicy::EquiDepth { fragments: 15 }
        ));
        assert_eq!(nectar().value_model, ValueModel::Nectar);
        assert_eq!(nectar_plus().value_model, ValueModel::NectarPlus);
        assert_eq!(
            deepsea_no_mle().value_model,
            ValueModel::DeepSea { use_mle: false }
        );
    }
}
