//! Value models (selection strategies) and partitioning policies.
//!
//! The value model decides *what stays in the pool* (DeepSea's decayed Φ vs
//! the Nectar/Nectar+ baselines of §10.1); the partition policy decides *how
//! views are laid out* (progressive/overlapping vs equi-depth vs none). The
//! two axes are orthogonal, exactly as in the paper's experiments.

use crate::mle::{adjusted_hits, fit_normal};
use crate::registry::PartitionState;
use crate::stats::{FragStats, LogicalTime, ViewStats};

/// How views and fragments are valued for admission/eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueModel {
    /// The paper's model: `Φ = COST · B / S` with the decay function, and
    /// (optionally) MLE-adjusted fragment hits (§7.1).
    DeepSea {
        /// Use the probabilistic fragment-benefit model (fragment
        /// correlations). Disable for the "DS-noMLE" ablation.
        use_mle: bool,
    },
    /// Nectar [Gunda et al., OSDI'10] as characterized in §10.1: value
    /// divides by the time since last access and does **not** accumulate
    /// benefit (only the most recent saving counts).
    Nectar,
    /// Nectar+ (§10.1): Nectar extended with accumulated (undecayed) benefit:
    /// `N+ = COST(V)·N(V) / (S(V)·ΔT)`.
    NectarPlus,
}

impl ValueModel {
    /// Value of a view at `tnow`.
    pub fn view_value(&self, stats: &ViewStats, tnow: LogicalTime, tmax: LogicalTime) -> f64 {
        if stats.size == 0 {
            return 0.0;
        }
        let s = stats.size as f64;
        match self {
            ValueModel::DeepSea { .. } => stats.phi(tnow, tmax),
            ValueModel::Nectar => {
                let dt = delta_t(stats.last_use(), tnow);
                stats.cost * stats.last_saving() / (s * dt)
            }
            ValueModel::NectarPlus => {
                let dt = delta_t(stats.last_use(), tnow);
                stats.cost * stats.undecayed_benefit() / (s * dt)
            }
        }
    }

    /// Benefit of a view at `tnow` under this model's accounting — used for
    /// the §7.2 admission filter `COST(V) ≤ B(V, tnow)`.
    pub fn view_benefit(&self, stats: &ViewStats, tnow: LogicalTime, tmax: LogicalTime) -> f64 {
        match self {
            ValueModel::DeepSea { .. } => stats.benefit(tnow, tmax),
            ValueModel::Nectar => stats.last_saving(),
            ValueModel::NectarPlus => stats.undecayed_benefit(),
        }
    }

    /// Values for every fragment of a partition at `tnow`, keyed by position
    /// in `partition.fragments`.
    ///
    /// For `DeepSea { use_mle: true }` the decayed hits of the whole
    /// partition are first smoothed through the MLE normal fit and each
    /// fragment is revalued by its adjusted hits `HA(I)` — this is the
    /// mechanism that keeps cold neighbors of hot spots alive (Figure 8).
    pub fn fragment_values(
        &self,
        partition: &PartitionState,
        view_size: u64,
        view_cost: f64,
        tnow: LogicalTime,
        tmax: LogicalTime,
    ) -> Vec<f64> {
        match self {
            ValueModel::DeepSea { use_mle } => {
                if *use_mle {
                    let weighted: Vec<_> = partition
                        .fragments
                        .iter()
                        .map(|f| (f.interval, f.stats.decayed_hits(tnow, tmax)))
                        .collect();
                    let total: f64 = weighted.iter().map(|(_, h)| h).sum();
                    if let Some(fit) = fit_normal(&weighted) {
                        return partition
                            .fragments
                            .iter()
                            .map(|f| {
                                let ha = adjusted_hits(total, &fit, &f.interval);
                                FragStats::phi_with_hits(ha, f.size, view_size, view_cost)
                            })
                            .collect();
                    }
                }
                partition
                    .fragments
                    .iter()
                    .map(|f| f.stats.phi(f.size, view_size, view_cost, tnow, tmax))
                    .collect()
            }
            ValueModel::Nectar | ValueModel::NectarPlus => partition
                .fragments
                .iter()
                .map(|f| {
                    if f.size == 0 || view_size == 0 {
                        return 0.0;
                    }
                    let dt = delta_t(f.stats.last_hit(), tnow);
                    let per_hit = (f.size as f64 / view_size as f64) * view_cost;
                    let benefit = match self {
                        // Nectar: only the most recent hit counts.
                        ValueModel::Nectar => {
                            if f.stats.raw_hits() > 0 {
                                per_hit
                            } else {
                                0.0
                            }
                        }
                        // Nectar+: accumulated, undecayed.
                        _ => per_hit * f.stats.raw_hits() as f64,
                    };
                    view_cost * benefit / (f.size as f64 * dt)
                })
                .collect(),
        }
    }

    /// The per-fragment hit counts `HA(I)` this model's [`fragment_values`]
    /// weighs benefit by — MLE-adjusted where the fit is active, decayed
    /// hits otherwise (Nectar: 1 iff ever hit; Nectar+: raw hits). Exposed
    /// so the decision audit log can report the exact hits a fragment's Φ
    /// was derived from.
    ///
    /// [`fragment_values`]: ValueModel::fragment_values
    pub fn fragment_adjusted_hits(
        &self,
        partition: &PartitionState,
        tnow: LogicalTime,
        tmax: LogicalTime,
    ) -> Vec<f64> {
        match self {
            ValueModel::DeepSea { use_mle } => {
                if *use_mle {
                    let weighted: Vec<_> = partition
                        .fragments
                        .iter()
                        .map(|f| (f.interval, f.stats.decayed_hits(tnow, tmax)))
                        .collect();
                    let total: f64 = weighted.iter().map(|(_, h)| h).sum();
                    if let Some(fit) = fit_normal(&weighted) {
                        return partition
                            .fragments
                            .iter()
                            .map(|f| adjusted_hits(total, &fit, &f.interval))
                            .collect();
                    }
                }
                partition
                    .fragments
                    .iter()
                    .map(|f| f.stats.decayed_hits(tnow, tmax))
                    .collect()
            }
            ValueModel::Nectar => partition
                .fragments
                .iter()
                .map(|f| if f.stats.raw_hits() > 0 { 1.0 } else { 0.0 })
                .collect(),
            ValueModel::NectarPlus => partition
                .fragments
                .iter()
                .map(|f| f.stats.raw_hits() as f64)
                .collect(),
        }
    }
}

/// Time since last access, floored at 1 so "used this query" divides by one.
fn delta_t(last: Option<LogicalTime>, tnow: LogicalTime) -> f64 {
    match last {
        Some(t) => ((tnow - t) as f64).max(1.0),
        None => tnow as f64,
    }
}

/// How materialized views are physically laid out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionPolicy {
    /// No materialization at all — vanilla Hive (the `H` baseline).
    NoMaterialization,
    /// Materialize whole views, never partition (the `NP` baseline, akin to
    /// ReStore with logical matching).
    NoPartition,
    /// Non-adaptive equi-depth partitioning into a fixed number of fragments
    /// (the `E-k` baselines of §10.2).
    EquiDepth {
        /// Number of fragments per partitioned view.
        fragments: usize,
    },
    /// The paper's progressive workload-aware partitioning.
    Progressive {
        /// Allow overlapping fragments (§3/§10.4); when false every
        /// refinement splits fragments to keep the partition horizontal.
        overlapping: bool,
        /// Refine partitions as the workload evolves; when false the initial
        /// partitioning is final (the `NR` baseline of §10.4).
        repartition: bool,
    },
}

impl PartitionPolicy {
    /// Does this policy materialize anything?
    pub fn materializes(&self) -> bool {
        !matches!(self, PartitionPolicy::NoMaterialization)
    }

    /// Does this policy partition views?
    pub fn partitions(&self) -> bool {
        matches!(
            self,
            PartitionPolicy::EquiDepth { .. } | PartitionPolicy::Progressive { .. }
        )
    }

    /// Does this policy refine partitions after creation?
    pub fn repartitions(&self) -> bool {
        matches!(
            self,
            PartitionPolicy::Progressive {
                repartition: true,
                ..
            }
        )
    }

    /// May fragments overlap?
    pub fn overlapping(&self) -> bool {
        matches!(
            self,
            PartitionPolicy::Progressive {
                overlapping: true,
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use deepsea_storage::FileId;

    fn stats_with_uses(uses: &[(LogicalTime, f64)]) -> ViewStats {
        let mut s = ViewStats::estimated(1000, 10.0);
        for &(t, v) in uses {
            s.record_use(t, v);
        }
        s
    }

    #[test]
    fn deepsea_accumulates_nectar_does_not() {
        let s = stats_with_uses(&[(1, 100.0), (2, 100.0), (3, 100.0)]);
        let tnow = 3;
        let ds = ValueModel::DeepSea { use_mle: true }.view_value(&s, tnow, 1000);
        let n = ValueModel::Nectar.view_value(&s, tnow, 1000);
        let np = ValueModel::NectarPlus.view_value(&s, tnow, 1000);
        assert!(ds > n, "DeepSea counts all three uses");
        assert!(np > n, "Nectar+ counts all three uses");
    }

    #[test]
    fn nectar_value_decays_with_idle_time() {
        let s = stats_with_uses(&[(10, 100.0)]);
        let soon = ValueModel::Nectar.view_value(&s, 11, 1000);
        let later = ValueModel::Nectar.view_value(&s, 100, 1000);
        assert!(soon > later);
    }

    #[test]
    fn deepsea_benefit_times_out_after_tmax() {
        let s = stats_with_uses(&[(10, 100.0)]);
        let b = ValueModel::DeepSea { use_mle: false }.view_benefit(&s, 200, 50);
        assert_eq!(b, 0.0);
        let b2 = ValueModel::NectarPlus.view_benefit(&s, 200, 50);
        assert!(b2 > 0.0, "Nectar+ never times out");
    }

    fn partition_with_hits() -> PartitionState {
        // Three fragments; the left one is hot, the other two cold.
        let mut p = PartitionState::new("a.k", Interval::new(0, 29));
        for (lo, hi) in [(0, 9), (10, 19), (20, 29)] {
            let id = p.track(Interval::new(lo, hi), 100);
            let f = p.frag_mut(id).unwrap();
            f.file = Some(FileId(id.0));
        }
        for _ in 0..20 {
            p.frag_mut(crate::fragment::FragmentId(0))
                .unwrap()
                .stats
                .record_hit(10);
        }
        p
    }

    #[test]
    fn mle_gives_hot_neighbor_more_value_than_distant() {
        let p = partition_with_hits();
        let vals = ValueModel::DeepSea { use_mle: true }.fragment_values(&p, 300, 50.0, 10, 100);
        assert!(vals[0] > vals[1], "hot beats neighbor");
        assert!(
            vals[1] > vals[2],
            "neighbor of hot spot beats distant: {vals:?}"
        );
        assert!(vals[2] >= 0.0);
    }

    #[test]
    fn without_mle_cold_fragments_are_equal() {
        let p = partition_with_hits();
        let vals = ValueModel::DeepSea { use_mle: false }.fragment_values(&p, 300, 50.0, 10, 100);
        assert!(vals[0] > vals[1]);
        assert_eq!(vals[1], 0.0);
        assert_eq!(vals[2], 0.0, "no correlation smoothing without MLE");
    }

    #[test]
    fn nectar_fragments_ignore_correlation_and_accumulation() {
        let p = partition_with_hits();
        let n = ValueModel::Nectar.fragment_values(&p, 300, 50.0, 10, 100);
        let nplus = ValueModel::NectarPlus.fragment_values(&p, 300, 50.0, 10, 100);
        assert_eq!(n[1], 0.0);
        assert_eq!(n[2], 0.0);
        assert!(nplus[0] > n[0], "N+ accumulates the 20 hits");
    }

    #[test]
    fn adjusted_hits_reconstruct_fragment_values() {
        // The audit log derives a fragment's Φ breakdown from
        // `fragment_adjusted_hits`; that reconstruction must agree with the
        // values the selection policy actually ranks by.
        let p = partition_with_hits();
        for vm in [
            ValueModel::DeepSea { use_mle: true },
            ValueModel::DeepSea { use_mle: false },
        ] {
            let vals = vm.fragment_values(&p, 300, 50.0, 10, 100);
            let ha = vm.fragment_adjusted_hits(&p, 10, 100);
            assert_eq!(vals.len(), ha.len());
            for (i, f) in p.fragments.iter().enumerate() {
                let rebuilt = FragStats::phi_with_hits(ha[i], f.size, 300, 50.0);
                assert_eq!(vals[i], rebuilt, "{vm:?} fragment {i}");
            }
        }
    }

    #[test]
    fn empty_partition_values() {
        let p = PartitionState::new("a.k", Interval::new(0, 9));
        let vals = ValueModel::DeepSea { use_mle: true }.fragment_values(&p, 100, 1.0, 1, 10);
        assert!(vals.is_empty());
    }

    #[test]
    fn policy_flags() {
        assert!(!PartitionPolicy::NoMaterialization.materializes());
        assert!(PartitionPolicy::NoPartition.materializes());
        assert!(!PartitionPolicy::NoPartition.partitions());
        assert!(PartitionPolicy::EquiDepth { fragments: 6 }.partitions());
        assert!(!PartitionPolicy::EquiDepth { fragments: 6 }.repartitions());
        let ds = PartitionPolicy::Progressive {
            overlapping: true,
            repartition: true,
        };
        assert!(ds.partitions() && ds.repartitions() && ds.overlapping());
        let nr = PartitionPolicy::Progressive {
            overlapping: true,
            repartition: false,
        };
        assert!(!nr.repartitions());
    }
}
