//! Per-(view, node) circuit breakers for the read path.
//!
//! A breaker guards repeated use of a materialized view whose fragments keep
//! failing (or keep straggling past a latency threshold): instead of burning
//! retry budget on a view that a gray-failed or dead node has made useless,
//! the read path *short-circuits* straight to the replica-or-base-table
//! fallback it would have reached anyway — paying the fallback cost once,
//! not the fallback cost plus a full retry ladder.
//!
//! The state machine is the classic three-state breaker, made deterministic
//! for the simulation:
//!
//! ```text
//! Closed --(failure_threshold consecutive failures)--> Open
//! Open   --(probe_after subsequent accesses)---------> HalfOpen
//! HalfOpen --(probe succeeds)--> Closed
//! HalfOpen --(probe fails)-----> Open
//! ```
//!
//! There is no wall clock anywhere: Open→HalfOpen triggers on the *Nth
//! subsequent access* (a consulted-operation countdown, like node repair in
//! `deepsea-storage`), so a replay of the same operation sequence reproduces
//! the same transitions bit-for-bit. Breakers are keyed by `(view, node)` —
//! the node a failure was traced to, or [`NODE_UNKNOWN`] for failures with
//! no placement (latency trips, unclustered file systems).
//!
//! State lives outside the registry and is deliberately *not* journaled:
//! breaker state is a health cache, not catalog truth, so
//! `DeepSea::recover` starts with every breaker closed (fail-safe: the
//! first post-restart failures re-open them).

use std::collections::BTreeMap;
// deepsea-lint: allow(lock_discipline) -- interior-mutability breaker cells shared with the server loop; guards never cross a call
use std::sync::{Mutex, MutexGuard};

/// Sentinel node id for failures that cannot be traced to a cluster node.
pub const NODE_UNKNOWN: u32 = u32::MAX;

/// Thresholds governing [`BreakerSet`]. Disabled by default
/// (`failure_threshold == 0`), which keeps every existing schedule
/// bit-identical: a disabled set never opens, never counts, never consults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive recorded failures after which a breaker opens.
    /// `0` disables breakers entirely.
    pub failure_threshold: u32,
    /// While open, the Nth subsequent access to the guarded view becomes
    /// the deterministic half-open probe (1 = the very next access).
    pub probe_after: u32,
    /// Optional latency trip: a *successful* view read slower than this
    /// many simulated seconds counts as a failure (gray-failure detection).
    pub latency_trip_secs: Option<f64>,
}

impl BreakerConfig {
    /// Breakers off: never opens, never consults, bit-transparent.
    pub fn disabled() -> Self {
        Self {
            failure_threshold: 0,
            probe_after: 0,
            latency_trip_secs: None,
        }
    }

    /// Open after `failures` consecutive failures; probe on the
    /// `probe_after`th access while open.
    pub fn after_failures(failures: u32, probe_after: u32) -> Self {
        Self {
            failure_threshold: failures,
            probe_after: probe_after.max(1),
            latency_trip_secs: None,
        }
    }

    /// Also count successful-but-slow reads (above `secs` simulated
    /// seconds) as failures.
    pub fn with_latency_trip(mut self, secs: f64) -> Self {
        self.latency_trip_secs = Some(secs);
        self
    }

    /// Whether breakers are active at all.
    pub fn enabled(&self) -> bool {
        self.failure_threshold > 0
    }

    /// Whether a successful read of the given simulated latency should be
    /// recorded as a failure under the latency trip.
    pub fn trips_on_latency(&self, secs: f64) -> bool {
        self.enabled() && self.latency_trip_secs.is_some_and(|t| secs > t)
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One breaker's state. `Closed` counts consecutive failures; `Open` counts
/// subsequent accesses toward the half-open probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed { consecutive: u32 },
    Open { accesses: u32 },
    HalfOpen,
}

impl State {
    fn name(&self) -> &'static str {
        match self {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half_open",
        }
    }
}

/// Verdict for one guarded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// No open breaker: use the view normally.
    Allow,
    /// An open breaker guards this view: skip it and fall back immediately,
    /// without spending retries on it.
    ShortCircuit,
    /// This access is the deterministic half-open probe: use the view, and
    /// let its outcome close or re-open the breaker.
    Probe,
}

/// A state transition, reported so the caller can journal it as a typed
/// decision event (this crate layer may talk to `deepsea-obs`; storage may
/// not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerTransition {
    /// The guarded view.
    pub view: String,
    /// The node the breaker is keyed to ([`NODE_UNKNOWN`] when untraced).
    pub node: u32,
    /// State before, as its canonical name.
    pub from: &'static str,
    /// State after.
    pub to: &'static str,
}

/// All breakers of one DeepSea instance, keyed by `(view, node)`.
///
/// Deterministic by construction: `BTreeMap` iteration order, access-count
/// (not time) probes, and no randomness.
#[derive(Debug)]
pub struct BreakerSet {
    cfg: BreakerConfig,
    state: Mutex<BTreeMap<(String, u32), State>>,
}

impl BreakerSet {
    /// An empty set (every breaker closed).
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// A set that never opens.
    pub fn disabled() -> Self {
        Self::new(BreakerConfig::disabled())
    }

    /// The thresholds in force.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    fn locked(&self) -> MutexGuard<'_, BTreeMap<(String, u32), State>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consult the breakers guarding `view` before using it. Open breakers
    /// advance their probe countdown (the Nth access while open *is* the
    /// probe); the first open breaker in key order drives the decision.
    pub fn check(&self, view: &str) -> (BreakerDecision, Vec<BreakerTransition>) {
        if !self.cfg.enabled() {
            return (BreakerDecision::Allow, Vec::new());
        }
        let mut st = self.locked();
        let mut transitions = Vec::new();
        let mut decision = BreakerDecision::Allow;
        for ((v, node), entry) in st.range_mut((view.to_string(), 0)..=(view.to_string(), u32::MAX))
        {
            debug_assert_eq!(v, view);
            match entry {
                State::Closed { .. } => {}
                State::HalfOpen => {
                    if decision == BreakerDecision::Allow {
                        decision = BreakerDecision::Probe;
                    }
                }
                State::Open { accesses } => {
                    *accesses += 1;
                    if *accesses >= self.cfg.probe_after {
                        transitions.push(BreakerTransition {
                            view: view.to_string(),
                            node: *node,
                            from: entry.name(),
                            to: "half_open",
                        });
                        *entry = State::HalfOpen;
                        if decision == BreakerDecision::Allow {
                            decision = BreakerDecision::Probe;
                        }
                    } else if decision != BreakerDecision::ShortCircuit {
                        decision = BreakerDecision::ShortCircuit;
                    }
                }
            }
        }
        (decision, transitions)
    }

    /// Record a successful (and fast-enough) use of `view`: half-open
    /// probes close, and closed breakers forget their failure streaks.
    /// Open breakers stay open — a success served around them proves
    /// nothing about the node they guard.
    pub fn record_success(&self, view: &str) -> Vec<BreakerTransition> {
        if !self.cfg.enabled() {
            return Vec::new();
        }
        let mut st = self.locked();
        let mut transitions = Vec::new();
        for ((_, node), entry) in st.range_mut((view.to_string(), 0)..=(view.to_string(), u32::MAX))
        {
            match entry {
                State::Closed { consecutive } => *consecutive = 0,
                State::HalfOpen => {
                    transitions.push(BreakerTransition {
                        view: view.to_string(),
                        node: *node,
                        from: entry.name(),
                        to: "closed",
                    });
                    *entry = State::Closed { consecutive: 0 };
                }
                State::Open { .. } => {}
            }
        }
        transitions
    }

    /// Record a failed (or latency-tripped) use of `view`, traced to
    /// `node` ([`NODE_UNKNOWN`] when untraceable). Closed breakers count
    /// toward the threshold; a failed half-open probe re-opens.
    pub fn record_failure(&self, view: &str, node: u32) -> Vec<BreakerTransition> {
        if !self.cfg.enabled() {
            return Vec::new();
        }
        let mut st = self.locked();
        let entry = st
            .entry((view.to_string(), node))
            .or_insert(State::Closed { consecutive: 0 });
        let mut transitions = Vec::new();
        match entry {
            State::Closed { consecutive } => {
                *consecutive += 1;
                if *consecutive >= self.cfg.failure_threshold {
                    transitions.push(BreakerTransition {
                        view: view.to_string(),
                        node,
                        from: entry.name(),
                        to: "open",
                    });
                    *entry = State::Open { accesses: 0 };
                }
            }
            State::HalfOpen => {
                transitions.push(BreakerTransition {
                    view: view.to_string(),
                    node,
                    from: entry.name(),
                    to: "open",
                });
                *entry = State::Open { accesses: 0 };
            }
            State::Open { .. } => {}
        }
        transitions
    }

    /// Canonical snapshot of every non-closed breaker, for tests and
    /// digests: `(view, node, state name)` in key order.
    pub fn open_breakers(&self) -> Vec<(String, u32, &'static str)> {
        self.locked()
            .iter()
            .filter(|(_, s)| !matches!(s, State::Closed { .. }))
            .map(|((v, n), s)| (v.clone(), *n, s.name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(failures: u32, probe_after: u32) -> BreakerSet {
        BreakerSet::new(BreakerConfig::after_failures(failures, probe_after))
    }

    #[test]
    fn disabled_breakers_are_inert() {
        let b = BreakerSet::disabled();
        for _ in 0..10 {
            assert!(b.record_failure("v", 0).is_empty());
        }
        assert_eq!(b.check("v").0, BreakerDecision::Allow);
        assert!(b.open_breakers().is_empty());
    }

    #[test]
    fn opens_after_consecutive_failures_and_probes_deterministically() {
        let b = set(3, 2);
        assert!(b.record_failure("v", 1).is_empty());
        assert!(b.record_failure("v", 1).is_empty());
        let t = b.record_failure("v", 1);
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), ("closed", "open"));
        assert_eq!(t[0].node, 1);

        // First access while open short-circuits; the second is the probe.
        let (d, t) = b.check("v");
        assert_eq!(d, BreakerDecision::ShortCircuit);
        assert!(t.is_empty());
        let (d, t) = b.check("v");
        assert_eq!(d, BreakerDecision::Probe);
        assert_eq!((t[0].from, t[0].to), ("open", "half_open"));

        // Probe success closes; streaks reset.
        let t = b.record_success("v");
        assert_eq!((t[0].from, t[0].to), ("half_open", "closed"));
        assert!(b.open_breakers().is_empty());
        assert_eq!(b.check("v").0, BreakerDecision::Allow);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = set(1, 1);
        b.record_failure("v", NODE_UNKNOWN);
        let (d, _) = b.check("v");
        assert_eq!(
            d,
            BreakerDecision::Probe,
            "probe_after=1: next access probes"
        );
        let t = b.record_failure("v", NODE_UNKNOWN);
        assert_eq!((t[0].from, t[0].to), ("half_open", "open"));
        assert_eq!(
            b.open_breakers(),
            vec![("v".to_string(), NODE_UNKNOWN, "open")]
        );
    }

    #[test]
    fn success_resets_closed_streaks() {
        let b = set(2, 1);
        b.record_failure("v", 0);
        b.record_success("v");
        b.record_failure("v", 0);
        assert!(
            b.record_failure("v", 0).iter().any(|t| t.to == "open"),
            "threshold counts only consecutive failures"
        );
    }

    #[test]
    fn breakers_are_scoped_per_view_and_node() {
        let b = set(1, 1);
        b.record_failure("a", 0);
        assert_eq!(b.check("b").0, BreakerDecision::Allow, "other view clear");
        b.record_failure("b", 7);
        let open = b.open_breakers();
        assert_eq!(open.len(), 2);
        assert_eq!(open[0].0, "a");
        assert_eq!(open[1], ("b".to_string(), 7, "open"));
    }

    #[test]
    fn latency_trip_threshold() {
        let cfg = BreakerConfig::after_failures(2, 1).with_latency_trip(10.0);
        assert!(cfg.trips_on_latency(10.5));
        assert!(!cfg.trips_on_latency(9.5));
        assert!(!BreakerConfig::disabled().trips_on_latency(1e9));
        let plain = BreakerConfig::after_failures(2, 1);
        assert!(!plain.trips_on_latency(1e9), "no trip configured");
    }
}
