//! The probabilistic fragment-benefit model (§7.1, "Probabilistic Fragment
//! Benefit Model").
//!
//! Hits on fragments are treated as samples from an underlying access
//! distribution over the partition attribute's domain. We quantize the
//! fragments into equal-width *parts*, spread each fragment's (decayed) hits
//! evenly over its parts, fit a normal distribution by maximum likelihood
//! (the weighted sample mean / adjusted sample variance — the closed-form MLE
//! the paper cites), and recompute each fragment's **adjusted hits**
//!
//! ```text
//! HA(I) = Htotal · (P(x ≤ u) − P(x ≤ l))
//! ```
//!
//! so that cold fragments *near* hot spots keep more value than cold
//! fragments far away — the fragment-correlation effect of Figure 8.

use deepsea_relation::distr::normal_cdf;

use crate::interval::Interval;

/// Cap on the total number of quantization parts, to bound fitting cost on
/// very wide domains. (The MLE is recomputed for every query, so it must stay
/// cheap — the paper calls the method "inexpensive".)
pub const MAX_PARTS: usize = 4096;

/// A fitted normal distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedNormal {
    /// MLE mean `μ̂`.
    pub mean: f64,
    /// Square root of the adjusted sample variance `σ̂²`.
    pub std: f64,
}

impl FittedNormal {
    /// `P(x ≤ c)` under the fitted distribution.
    pub fn cdf(&self, c: f64) -> f64 {
        normal_cdf(c, self.mean, self.std)
    }
}

/// Fit a normal distribution to per-fragment (decayed) hit counts.
///
/// `fragments` pairs each fragment's interval with its hit weight `H(I)`.
/// Returns `None` when there is no signal (no fragments or ~zero hits).
pub fn fit_normal(fragments: &[(Interval, f64)]) -> Option<FittedNormal> {
    let active: Vec<&(Interval, f64)> = fragments.iter().filter(|(_, h)| *h > 0.0).collect();
    if active.is_empty() {
        return None;
    }
    let total_hits: f64 = active.iter().map(|(_, h)| h).sum();
    if total_hits <= f64::EPSILON {
        return None;
    }

    // Choose a part width: the narrowest fragment's width, but never so small
    // that the total part count exceeds MAX_PARTS.
    let min_width = active.iter().map(|(iv, _)| iv.width()).min().unwrap_or(1);
    let total_width: u64 = active.iter().map(|(iv, _)| iv.width()).sum();
    let floor_width = total_width.div_ceil(MAX_PARTS as u64).max(1);
    let part_width = min_width.max(floor_width);

    // Spread each fragment's hits evenly over its parts (H(p_i) = Σ H(I)/#I)
    // and accumulate the weighted moments over part midpoints.
    let mut wsum = 0.0; // Σ h_p
    let mut xsum = 0.0; // Σ h_p · x_p
    for (iv, h) in &active {
        let parts = iv.width().div_ceil(part_width).max(1);
        let per_part = h / parts as f64;
        for p in 0..parts {
            let lo = iv.lo + (p * part_width) as i64;
            let hi = (lo + part_width as i64 - 1).min(iv.hi);
            let mid = (lo + hi) as f64 / 2.0;
            wsum += per_part;
            xsum += per_part * mid;
        }
    }
    let mean = xsum / wsum;
    let mut vsum = 0.0; // Σ h_p · (x_p − μ)²
    for (iv, h) in &active {
        let parts = iv.width().div_ceil(part_width).max(1);
        let per_part = h / parts as f64;
        for p in 0..parts {
            let lo = iv.lo + (p * part_width) as i64;
            let hi = (lo + part_width as i64 - 1).min(iv.hi);
            let mid = (lo + hi) as f64 / 2.0;
            vsum += per_part * (mid - mean).powi(2);
        }
    }
    // Adjusted (n−1) sample variance — "usually we do not expect a very large
    // number of fragments for a view" (§7.1).
    let denom = (wsum - 1.0).max(1.0);
    let var = vsum / denom;
    // Guard against a degenerate point mass: give it at least one part width
    // of spread so the CDF stays informative.
    let std = var.sqrt().max(part_width as f64 / 2.0);
    Some(FittedNormal { mean, std })
}

/// Adjusted hits `HA(I) = Htotal · (P(x ≤ u) − P(x ≤ l))` with a half-point
/// continuity correction for the integer domain.
pub fn adjusted_hits(total_hits: f64, fit: &FittedNormal, iv: &Interval) -> f64 {
    let p = fit.cdf(iv.hi as f64 + 0.5) - fit.cdf(iv.lo as f64 - 0.5);
    total_hits * p.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn no_signal_returns_none() {
        assert!(fit_normal(&[]).is_none());
        assert!(fit_normal(&[(iv(0, 10), 0.0)]).is_none());
    }

    #[test]
    fn symmetric_hits_center_the_mean() {
        let frags = vec![(iv(0, 9), 10.0), (iv(10, 19), 50.0), (iv(20, 29), 10.0)];
        let fit = fit_normal(&frags).unwrap();
        assert!((fit.mean - 14.5).abs() < 1.0, "mean={}", fit.mean);
        assert!(fit.std > 0.0);
    }

    #[test]
    fn paper_scenario_neighbor_of_hotspot_beats_distant() {
        // §7.1: many hits on [0,5], none on [6,10] or [11,15] — the fragment
        // adjacent to the hot spot must receive more adjusted hits.
        let frags = vec![(iv(0, 5), 100.0), (iv(6, 10), 0.0), (iv(11, 15), 0.0)];
        let fit = fit_normal(&frags).unwrap();
        let near = adjusted_hits(100.0, &fit, &iv(6, 10));
        let far = adjusted_hits(100.0, &fit, &iv(11, 15));
        assert!(
            near > far,
            "neighbor must get more adjusted hits: near={near} far={far}"
        );
        assert!(near > 0.0);
    }

    #[test]
    fn adjusted_hits_sum_bounded_by_total() {
        let frags = vec![(iv(0, 99), 30.0), (iv(100, 199), 70.0)];
        let fit = fit_normal(&frags).unwrap();
        let sum: f64 = frags
            .iter()
            .map(|(i, _)| adjusted_hits(100.0, &fit, i))
            .sum();
        assert!(sum <= 100.0 + 1e-9);
        assert!(sum > 50.0, "most mass stays on the covered domain");
    }

    #[test]
    fn single_fragment_fit_is_degenerate_but_safe() {
        let frags = vec![(iv(50, 59), 10.0)];
        let fit = fit_normal(&frags).unwrap();
        assert!((fit.mean - 54.5).abs() < 1e-9);
        assert!(fit.std > 0.0, "degenerate variance is floored");
        let h = adjusted_hits(10.0, &fit, &iv(50, 59));
        assert!(h > 5.0, "fragment holding all hits keeps most of them: {h}");
    }

    #[test]
    fn wide_domain_respects_part_cap() {
        // One very wide and one narrow fragment: without the cap this would
        // quantize into billions of parts.
        let frags = vec![(iv(0, 1_000_000_000), 5.0), (iv(0, 9), 50.0)];
        let fit = fit_normal(&frags).unwrap();
        assert!(fit.mean.is_finite());
        assert!(fit.std.is_finite());
    }

    #[test]
    fn hotter_fragment_gets_more_adjusted_hits() {
        let frags = vec![(iv(0, 9), 90.0), (iv(10, 19), 10.0)];
        let fit = fit_normal(&frags).unwrap();
        let hot = adjusted_hits(100.0, &fit, &iv(0, 9));
        let cold = adjusted_hits(100.0, &fit, &iv(10, 19));
        assert!(hot > cold);
    }

    #[test]
    fn cdf_monotone() {
        let fit = FittedNormal {
            mean: 10.0,
            std: 3.0,
        };
        assert!(fit.cdf(8.0) < fit.cdf(12.0));
    }
}
