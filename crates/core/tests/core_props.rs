//! Property tests for DeepSea's statistics and policy layers.

use deepsea_core::policy::ValueModel;
use deepsea_core::registry::PartitionState;
use deepsea_core::stats::{decay, FragStats, ViewStats};
use deepsea_core::Interval;
use deepsea_storage::FileId;
use proptest::prelude::*;

proptest! {
    /// DEC is within [0,1], monotone in event recency, and zero past tmax.
    #[test]
    fn decay_bounds_and_monotonicity(
        tnow in 1u64..10_000,
        t1 in 1u64..10_000,
        t2 in 1u64..10_000,
        tmax in 1u64..10_000,
    ) {
        let (t1, t2) = (t1.min(tnow), t2.min(tnow));
        let d1 = decay(tnow, t1, tmax);
        let d2 = decay(tnow, t2, tmax);
        prop_assert!((0.0..=1.0).contains(&d1));
        if t1 <= t2 {
            // Older events never decay less... unless t1 already timed out.
            prop_assert!(d1 <= d2 + 1e-12);
        }
        if tnow - t1 > tmax {
            prop_assert_eq!(d1, 0.0);
        }
    }

    /// View benefit is monotone in recorded events: adding a use never
    /// lowers B or Φ.
    #[test]
    fn benefit_monotone_in_events(
        savings in proptest::collection::vec(0.0f64..1_000.0, 1..20),
        tmax in 1u64..1_000,
    ) {
        let mut s = ViewStats::estimated(1_000, 10.0);
        let mut prev_b = 0.0;
        for (i, sv) in savings.iter().enumerate() {
            let t = (i + 1) as u64;
            s.record_use(t, *sv);
            let b = s.benefit(t, tmax);
            // At the same tnow a new event adds sv·1.0, so B grows by sv —
            // but earlier events decayed; compare against the *recomputed*
            // value with one fewer event at this tnow.
            let mut without = s.clone();
            without.events.pop();
            prop_assert!(b + 1e-9 >= without.benefit(t, tmax));
            prev_b = b;
        }
        prop_assert!(prev_b >= 0.0);
    }

    /// Fragment Φ is scale-consistent: doubling view cost doubles benefit
    /// per hit and quadruples Φ (cost appears twice in the formula).
    #[test]
    fn fragment_phi_scales_with_view_cost(
        hits in proptest::collection::vec(1u64..100, 1..10),
        cost in 1.0f64..1_000.0,
        frag_size in 1u64..1_000,
        view_size in 1_000u64..100_000,
    ) {
        let mut f = FragStats::default();
        let tnow = 100;
        for h in &hits {
            f.record_hit(*h);
        }
        let phi1 = f.phi(frag_size, view_size, cost, tnow, 1_000);
        let phi2 = f.phi(frag_size, view_size, cost * 2.0, tnow, 1_000);
        prop_assert!((phi2 - 4.0 * phi1).abs() <= 1e-6 * phi1.abs().max(1.0));
    }

    /// Across all value models: a fragment with strictly more (and more
    /// recent) hits never ranks below an identical fragment with fewer hits.
    #[test]
    fn hotter_fragment_never_ranks_lower(
        base_hits in 1usize..10,
        extra in 1usize..10,
        tnow in 20u64..100,
    ) {
        for vm in [
            ValueModel::DeepSea { use_mle: false },
            ValueModel::DeepSea { use_mle: true },
            ValueModel::Nectar,
            ValueModel::NectarPlus,
        ] {
            let mut p = PartitionState::new("a.k", Interval::new(0, 199));
            let cold = p.track(Interval::new(0, 99), 500);
            let hot = p.track(Interval::new(100, 199), 500);
            for (id, n) in [(cold, base_hits), (hot, base_hits + extra)] {
                let f = p.frag_mut(id).unwrap();
                f.file = Some(FileId(id.0));
                for i in 0..n {
                    // hot gets its extra hits later (more recent)
                    f.stats.record_hit(tnow - (n - i) as u64);
                }
            }
            let values = vm.fragment_values(&p, 1_000, 50.0, tnow, 1_000);
            prop_assert!(
                values[1] + 1e-9 >= values[0],
                "{vm:?}: hot {} < cold {}",
                values[1],
                values[0]
            );
        }
    }

    /// Boundary partitions from arbitrary split points always cover the
    /// domain disjointly, and estimate_size is conserved across them.
    #[test]
    fn boundary_partition_conserves_size(
        points in proptest::collection::vec(1i64..10_000, 0..20),
        view_size in 1_000u64..1_000_000,
    ) {
        let mut p = PartitionState::new("a.k", Interval::new(0, 10_000));
        for pt in points {
            p.add_boundary(pt);
        }
        let parts = p.boundary_partition();
        prop_assert!(deepsea_core::interval::is_horizontal_partition(
            &parts,
            &Interval::new(0, 10_000)
        ));
        let total: u64 = parts.iter().map(|iv| p.estimate_size(iv, view_size)).sum();
        // Width-proportional estimates round per fragment; conservation holds
        // within one byte per fragment.
        let slack = parts.len() as u64;
        prop_assert!(
            total >= view_size.saturating_sub(slack) && total <= view_size + slack,
            "estimated {total} vs view {view_size}"
        );
    }
}
