//! A self-contained deterministic PRNG exposing the subset of the `rand`
//! crate's API this workspace uses (`Rng`, `RngExt`, `SeedableRng`,
//! `rngs::StdRng`). The build environment has no registry access, so the
//! workspace vendors this stand-in instead of depending on crates.io.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — both public-domain
//! algorithms (Blackman & Vigna) with excellent statistical quality for
//! simulation workloads. Not cryptographically secure; nothing here needs
//! that.

/// A source of random 64-bit words. The base trait every sampler bounds on
/// (`R: Rng + ?Sized`), mirroring `rand::Rng`.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::RngExt`.
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T` (`f64` in `[0, 1)`, full-width
    /// integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value from a range (`lo..hi` or `lo..=hi`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types with a canonical uniform distribution (the `random()` call).
pub trait Standard {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from (the `random_range()` call).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform draw from `[0, width)` (Lemire-style via 128-bit
/// widening multiply; the tiny residual bias of one multiply is far below
/// anything these simulations can observe).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, width as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: f64 = f64::from_rng(rng);
                self.start + (self.end - self.start) * u as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u: f64 = f64::from_rng(rng);
                lo + (hi - lo) * u as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 — the recommended seeder for xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = r.random_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
            let w = r.random_range(0usize..5);
            assert!(w < 5);
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
    }

    #[test]
    fn range_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.random_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} skewed");
        }
    }
}
