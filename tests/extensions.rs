//! Integration tests for the extension features: the SQL front end driving
//! the full stack, predicate pushdown in the Hive baseline, and the §11
//! fragment-merging maintenance pass.

use deepsea::core::{baselines, driver::DeepSea};
use deepsea::engine::sql::parse;
use deepsea::workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea::workload::TemplateId;

fn ds(config: deepsea::core::DeepSeaConfig, seed: u64) -> DeepSea {
    let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, seed);
    DeepSea::new(data.catalog, config)
}

/// SQL-sourced plans flow through matching/materialization/rewriting exactly
/// like builder-sourced plans — and views created by one are reused by the
/// other (logical matching is syntax-independent).
#[test]
fn sql_and_builder_plans_share_views() {
    let mut sys = ds(baselines::deepsea(), 81);
    // Builder query creates the store_sales ⋈ item view…
    let built = TemplateId::Q30.instantiate(5_000, 5_400);
    sys.process_query(&built).unwrap();
    // …and the SQL-sourced version of a *different* range reuses it.
    let sql = TemplateId::Q30.sql(5_050, 5_350);
    let plan = parse(&sql).expect("template SQL parses");
    let out = sys.process_query(&plan).unwrap();
    assert!(
        out.used_view.is_some(),
        "SQL query must reuse the builder-created view: {out:?}"
    );
    // And the answers agree with vanilla execution.
    let mut hive = ds(baselines::hive(), 81);
    hive.process_query(&built).unwrap();
    let want = hive.process_query(&plan).unwrap();
    assert_eq!(out.result.fingerprint(), want.result.fingerprint());
}

/// The Hive baseline pushes selections down; DeepSea does not. Both answer
/// identically, and pushdown must not make Hive *slower*.
#[test]
fn hive_pushdown_preserves_answers() {
    let mut hive = ds(baselines::hive(), 82);
    for t in [TemplateId::Q7, TemplateId::Q30] {
        let plan = t.instantiate(2_000, 4_000);
        let out = hive.process_query(&plan).unwrap();
        assert!(!out.result.is_empty());
        // The pushed-down plan reads the same base bytes (scans dominate) —
        // this is a smoke check that optimization happened without breaking
        // metrics accounting.
        assert!(out.metrics.bytes_read > 0);
    }
}

/// Fragment merging: after progressive refinement shreds a partition, the
/// maintenance pass merges co-hit neighbors, queries still answer correctly,
/// and the fragment count drops.
#[test]
fn merge_pass_compacts_cohit_fragments_and_preserves_answers() {
    let cfg = baselines::deepsea().with_phi(0.02); // aggressively fine-grained
    let mut sys = ds(cfg, 83);
    // A wide query repeatedly touching many small fragments together.
    let wide = TemplateId::Q30.instantiate(10_000, 14_000);
    for _ in 0..4 {
        sys.process_query(&wide).unwrap();
    }
    let frag_count = |s: &DeepSea| {
        s.registry()
            .iter()
            .flat_map(|v| v.partitions.values())
            .map(|p| p.materialized().len())
            .sum::<usize>()
    };
    let before = frag_count(&sys);
    assert!(before >= 4, "φ=0.02 shreds the view: {before} fragments");

    let (secs, merged) = sys.merge_cohit_fragments(0.25, 0.5).unwrap();
    assert!(!merged.is_empty(), "co-hit neighbors must merge");
    assert!(secs > 0.0, "merging costs simulated time");
    let after = frag_count(&sys);
    assert!(after < before, "fragment count drops: {before} -> {after}");

    // Queries still answer correctly post-merge.
    let mut hive = ds(baselines::hive(), 83);
    let narrow = TemplateId::Q30.instantiate(11_000, 13_000);
    let a = sys.process_query(&narrow).unwrap();
    let b = hive.process_query(&narrow).unwrap();
    assert_eq!(a.result.fingerprint(), b.result.fingerprint());
    assert!(
        a.used_view.is_some(),
        "merged fragments still serve queries"
    );
}

/// Merging is idempotent once everything co-hit is merged.
#[test]
fn merge_pass_converges() {
    let cfg = baselines::deepsea().with_phi(0.02);
    let mut sys = ds(cfg, 84);
    let wide = TemplateId::Q30.instantiate(10_000, 14_000);
    for _ in 0..4 {
        sys.process_query(&wide).unwrap();
    }
    // Repeated passes must reach a fixed point (tolerance admits chains).
    let mut last = usize::MAX;
    for _ in 0..6 {
        let (_, merged) = sys.merge_cohit_fragments(0.25, 0.5).unwrap();
        if merged.is_empty() {
            last = 0;
            break;
        }
        last = merged.len();
    }
    assert_eq!(last, 0, "merge passes must converge to no-op");
}

/// Multiple partitions on different attributes of the same view coexist
/// (the paper permits one partition per attribute).
#[test]
fn multi_attribute_partitions_coexist() {
    let mut sys = ds(baselines::deepsea(), 85);
    // Q26 selects on ss_item_sk but joins customer — its view is
    // store_sales ⋈ customer partitioned on ss_item_sk…
    sys.process_query(&TemplateId::Q26.instantiate(1_000, 1_500))
        .unwrap();
    // …while a manual query selects the same join on the customer key.
    let plan = parse(
        "SELECT customer.c_age_group, SUM(store_sales.ss_quantity) AS qty \
         FROM store_sales JOIN customer \
         ON store_sales.ss_customer_sk = customer.c_customer_sk \
         WHERE store_sales.ss_customer_sk BETWEEN 100 AND 400 \
         GROUP BY customer.c_age_group",
    )
    .unwrap();
    sys.process_query(&plan).unwrap();
    sys.process_query(&plan).unwrap();
    let view = sys
        .registry()
        .iter()
        .find(|v| v.partitions.len() >= 2)
        .expect("a view tracked partitions on two attributes");
    let attrs: Vec<&str> = view.partitions.keys().map(String::as_str).collect();
    assert!(attrs.iter().any(|a| a.contains("ss_item_sk")), "{attrs:?}");
    assert!(
        attrs.iter().any(|a| a.contains("ss_customer_sk")),
        "{attrs:?}"
    );
}
