//! Property test: for arbitrary query ranges, answering from DeepSea's
//! (partitioned, progressively refined) views is indistinguishable from
//! recomputing — across an evolving sequence of queries sharing one pool.

use deepsea::core::{baselines, driver::DeepSea};
use deepsea::workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea::workload::TemplateId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a 10-query sequence on a full instance
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_query_sequences_are_answered_correctly(
        seed in 0u64..1_000,
        ranges in proptest::collection::vec((0i64..40_000, 1i64..4_000), 10),
        template_picks in proptest::collection::vec(0usize..10, 10),
    ) {
        let data =
            BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, seed);
        let hive_data =
            BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, seed);
        let mut ds = DeepSea::new(data.catalog, baselines::deepsea());
        let mut hive = DeepSea::new(hive_data.catalog, baselines::hive());
        let templates = TemplateId::all();
        for ((lo, width), pick) in ranges.iter().zip(&template_picks) {
            let hi = (lo + width).min(39_999);
            let plan = templates[*pick].instantiate(*lo, hi);
            let a = ds.process_query(&plan).expect("deepsea");
            let b = hive.process_query(&plan).expect("hive");
            prop_assert_eq!(
                a.result.fingerprint(),
                b.result.fingerprint(),
                "range [{}, {}] template {:?} (via {:?})",
                lo, hi, templates[*pick], a.used_view
            );
        }
    }
}
