//! Tail-tolerance suite: replay the golden workload under **gray-failure**
//! schedules — nodes that stay live but serve reads a multiplier slower —
//! and assert the tail-tolerance machinery (hedged replica reads, circuit
//! breakers, retry budgets, deadline-aware load shedding) never changes an
//! answer or the committed state trajectory.
//!
//! The invariants, in decreasing strength:
//!
//! - **Replication ≥ 2 + any slow-node schedule + hedging** ⇒ answers and
//!   the final registry digest are bit-identical to the zero-schedule run:
//!   slowness shapes *cost*, never *content*, and every catalog decision
//!   flows through the cost estimator rather than measured latencies.
//! - **All schedules empty + hedging armed** ⇒ the whole run (fingerprints,
//!   per-query elapsed bits, registry digest) is bit-identical to hedging
//!   off: a hedge whose primary wins returns the primary's cost unchanged.
//! - **Same seed ⇒ same decision stream**: the shed / hedge / slow-node
//!   events the server journals replay bit-for-bit.
//! - **Shedding is honest**: rejected tickets still commit (the writer's
//!   Algorithm-1 trajectory never depends on admission control), and served
//!   shed modes return exact answers.
//!
//! Schedules are generated from `TAIL_CHAOS_SEEDS` (comma-separated,
//! default `3,11`), so CI can sweep without a rebuild:
//! `TAIL_CHAOS_SEEDS=3,11 cargo test -q --test tail_chaos`.

use std::sync::{Arc, OnceLock};

use deepsea::bench::golden::{golden_catalog, golden_plans};
use deepsea::core::{
    baselines, BreakerConfig, CatalogJournal, DeepSea, DeepSeaConfig, ObsConfig, Observer,
    ServerConfig, ShedPolicy, ViewServer,
};
use deepsea::engine::{Catalog, ClusterSim, LogicalPlan, RetryPolicy, RetryingBackend, SimBackend};
use deepsea::storage::{
    BlockConfig, FaultConfig, FaultInjector, HedgeConfig, NodeConfig, NodeId, NodeSet, SimFs,
};

/// Datanodes in every test topology.
const NODES: u32 = 4;

/// Queries per gray-failure window: the node turns slow one query into the
/// window and recovers one query before it ends.
const WINDOW: usize = 5;

fn chaos_config() -> DeepSeaConfig {
    baselines::deepsea().with_phi(0.05)
}

fn setup() -> (&'static Arc<Catalog>, &'static Vec<LogicalPlan>) {
    static S: OnceLock<(Arc<Catalog>, Vec<LogicalPlan>)> = OnceLock::new();
    let s = S.get_or_init(|| (golden_catalog(), golden_plans()));
    (&s.0, &s.1)
}

fn tail_chaos_seeds() -> Vec<u64> {
    std::env::var("TAIL_CHAOS_SEEDS")
        .unwrap_or_else(|_| "3,11".into())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .expect("TAIL_CHAOS_SEEDS must be comma-separated u64s")
        })
        .collect()
}

/// Knuth LCG (high bits) for schedule generation.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// `(query index, node, latency multiplier)` — applied immediately before
/// that query; a multiplier of 1.0 clears the slowdown.
type SlowSchedule = Vec<(usize, u32, f64)>;

/// A seeded gray-failure schedule: in each window one LCG-chosen node slows
/// by an LCG-chosen multiplier (2×–5×), recovering before the window ends,
/// so the final window leaves every node at full speed.
fn slow_node_schedule(seed: u64, n: usize) -> SlowSchedule {
    let mut lcg = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);
    let mut schedule = Vec::new();
    for w in 0..n / WINDOW {
        let node = (lcg.next() % u64::from(NODES)) as u32;
        let multiplier = 2.0 + (lcg.next() % 4) as f64;
        schedule.push((w * WINDOW + 1, node, multiplier));
        schedule.push((w * WINDOW + WINDOW - 1, node, 1.0));
    }
    schedule
}

/// What one sharded replay observed.
#[derive(Debug)]
struct TailRun {
    fingerprints: Vec<Vec<String>>,
    elapsed_bits: Vec<u64>,
    state_digest: u64,
    hedges_issued: u64,
    hedges_won: u64,
    node_slows: u64,
    short_circuits: u64,
}

fn build_sharded(
    replication: u32,
    faults: FaultInjector,
    config: DeepSeaConfig,
    journal: Option<Arc<CatalogJournal>>,
) -> (DeepSea, Arc<SimFs<deepsea::relation::Table>>) {
    let (catalog, _) = setup();
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::with_cluster(
        BlockConfig::default(),
        cluster.weights,
        faults,
        NodeSet::new(NodeConfig::new(NODES, replication)),
    ));
    let policy = RetryPolicy::default();
    let mut ds = DeepSea::with_backend(
        Arc::clone(catalog),
        Arc::clone(&fs),
        Box::new(RetryingBackend::new(SimBackend::new(cluster), policy)),
        config.with_retry(policy),
    );
    if let Some(journal) = journal {
        ds = ds.with_journal(journal);
    }
    (ds, fs)
}

/// Replay the golden queries serially, applying `schedule` through the FS's
/// public slow-node API between queries, with hedging optionally armed.
fn run_tail(
    (mut ds, fs): (DeepSea, Arc<SimFs<deepsea::relation::Table>>),
    schedule: &SlowSchedule,
    hedge: Option<HedgeConfig>,
) -> TailRun {
    let (_, plans) = setup();
    fs.set_hedge(hedge);
    let mut out = TailRun {
        fingerprints: Vec::new(),
        elapsed_bits: Vec::new(),
        state_digest: 0,
        hedges_issued: 0,
        hedges_won: 0,
        node_slows: 0,
        short_circuits: 0,
    };
    for (i, plan) in plans.iter().enumerate() {
        // Recoveries before slowdowns, so a boundary that moves the slow
        // window to another node never has two slow nodes at once.
        for &(when, node, mult) in schedule {
            if when == i && mult <= 1.0 {
                fs.clear_node_slow(NodeId(node));
            }
        }
        for &(when, node, mult) in schedule {
            if when == i && mult > 1.0 {
                fs.set_node_slow(NodeId(node), mult);
            }
        }
        let o = ds
            .process_query(plan)
            .unwrap_or_else(|e| panic!("query {i}: gray failures must never surface: {e}"));
        out.fingerprints.push(o.result.fingerprint());
        out.elapsed_bits.push(o.elapsed_secs.to_bits());
        out.short_circuits += u64::from(o.trace.recovery.breaker_short_circuits);
    }
    let stats = fs.fault_stats();
    out.hedges_issued = stats.hedges_issued;
    out.hedges_won = stats.hedges_won;
    out.node_slows = stats.node_slows;
    out.state_digest = ds.registry().state_digest();
    out
}

fn run_tail_default(
    replication: u32,
    schedule: &SlowSchedule,
    hedge: Option<HedgeConfig>,
) -> TailRun {
    run_tail(
        build_sharded(replication, FaultInjector::disabled(), chaos_config(), None),
        schedule,
        hedge,
    )
}

/// Zero-schedule, hedging-off baseline at replication 2.
fn tail_baseline() -> &'static TailRun {
    static R: OnceLock<TailRun> = OnceLock::new();
    R.get_or_init(|| run_tail_default(2, &Vec::new(), None))
}

/// The headline invariant: at replication 2, any slow-node schedule with
/// hedging armed changes *cost only* — answers and the final registry
/// digest are bit-identical to the zero-schedule run, because every catalog
/// decision flows through the cost estimator, never measured latencies.
#[test]
fn slow_schedules_with_hedging_preserve_answers_and_state() {
    let golden = tail_baseline();
    let (_, plans) = setup();
    let mut saw_hedge_wins = false;
    for seed in tail_chaos_seeds() {
        let schedule = slow_node_schedule(seed, plans.len());
        assert!(!schedule.is_empty(), "seed {seed}: empty schedule");
        let run = run_tail_default(2, &schedule, Some(HedgeConfig::after_secs(0.01)));
        assert_eq!(
            run.fingerprints, golden.fingerprints,
            "seed {seed}: answers diverged under gray failures"
        );
        assert_eq!(
            run.state_digest, golden.state_digest,
            "seed {seed}: committed state diverged under gray failures"
        );
        assert!(run.node_slows > 0, "seed {seed}: schedule never slowed");
        saw_hedge_wins |= run.hedges_won > 0;
    }
    assert!(
        saw_hedge_wins,
        "no schedule ever produced a winning hedge — the hedge path is dead"
    );
}

/// Hedging is bit-transparent when nothing is slow: with every schedule
/// empty, arming hedged reads reproduces the hedging-off run exactly —
/// fingerprints, per-query elapsed bits, and the registry digest — because
/// a hedge whose primary wins returns the primary's cost unchanged.
#[test]
fn hedging_is_bit_transparent_without_slow_nodes() {
    let golden = tail_baseline();
    let run = run_tail_default(2, &Vec::new(), Some(HedgeConfig::after_secs(0.01)));
    assert_eq!(run.fingerprints, golden.fingerprints);
    assert_eq!(
        run.elapsed_bits, golden.elapsed_bits,
        "hedging with healthy replicas must not move a single bit of cost"
    );
    assert_eq!(run.state_digest, golden.state_digest);
    assert_eq!(
        run.hedges_won, 0,
        "a healthy replica must never win a hedge"
    );
}

/// Same-seed reproducibility of the full tail-tolerance decision stream:
/// two servers with identical configs replay identical shed / hedge /
/// slow-node event sequences and identical per-ticket latencies, and a
/// different seed produces a different schedule (the stream is seeded, not
/// constant).
#[test]
fn same_seed_reproduces_shed_and_hedge_decision_stream() {
    let (_, plans) = setup();
    let serve = |seed: u64| {
        let obs = Observer::new(ObsConfig::on());
        let (ds, fs) = build_sharded(2, FaultInjector::disabled(), chaos_config(), None);
        fs.set_hedge(Some(HedgeConfig::after_secs(0.01)));
        let cfg = ServerConfig {
            clients: 3,
            seed,
            mean_gap_secs: 0.05,
            slow_schedule: vec![(2, 1, 4.0), (20, 1, 1.0), (25, 2, 3.0), (40, 2, 1.0)],
            deadline_secs: Some(2.0),
            max_queue: Some(8),
            shed_policy: ShedPolicy::ServeStale,
            ..ServerConfig::default()
        };
        let mut server = ViewServer::new(ds.with_observer(obs.clone()), cfg);
        let report = server
            .run(plans)
            .expect("serving must absorb gray failures");
        let decisions: Vec<_> = obs
            .events_snapshot()
            .into_iter()
            .filter(|e| {
                matches!(
                    e.event.kind(),
                    "shed" | "hedged_read" | "node_slow" | "node_slow_cleared"
                )
            })
            .collect();
        (report, decisions)
    };

    let (r1, d1) = serve(7);
    let (r2, d2) = serve(7);
    assert!(!d1.is_empty(), "overloaded serve produced no decisions");
    assert!(
        d1.iter().any(|e| e.event.kind() == "shed"),
        "deadline 2.0s under 0.05s arrivals must shed"
    );
    assert_eq!(d1, d2, "same seed must replay the exact decision stream");
    assert_eq!(
        r1.latencies_secs()
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        r2.latencies_secs()
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        "same seed must replay identical latencies"
    );
    assert_eq!(r1.shed_reads, r2.shed_reads);
    assert_eq!(r1.state_digest, r2.state_digest);

    let (_, d3) = serve(8);
    assert_ne!(d1, d3, "different seeds must produce different schedules");
}

/// Shedding is honest: every shed ticket carries its policy and reason,
/// rejected tickets still commit (the committed fingerprint series is the
/// serial one, complete), and served shed modes return exact answers.
#[test]
fn shed_tickets_still_commit_and_served_sheds_stay_exact() {
    let (_, plans) = setup();
    let golden = tail_baseline();
    for policy in [
        ShedPolicy::Reject,
        ShedPolicy::ServeStale,
        ShedPolicy::DegradeBase,
    ] {
        let (ds, _fs) = build_sharded(2, FaultInjector::disabled(), chaos_config(), None);
        let cfg = ServerConfig {
            clients: 2,
            seed: 5,
            mean_gap_secs: 0.05,
            deadline_secs: Some(1.5),
            max_queue: Some(4),
            shed_policy: policy,
            ..ServerConfig::default()
        };
        let mut server = ViewServer::new(ds, cfg);
        let report = server.run(plans).expect("shedding must never error");
        assert!(
            report.shed_reads > 0,
            "{policy:?}: overload produced no shedding"
        );
        assert_eq!(
            report.committed_fingerprints(),
            golden.fingerprints,
            "{policy:?}: shedding leaked into the committed trajectory"
        );
        for rec in &report.records {
            if let Some((p, reason)) = rec.shed {
                assert_eq!(p, policy.name());
                assert!(
                    matches!(
                        reason,
                        "deadline_passed" | "queue_full" | "projected_overrun"
                    ),
                    "unknown shed reason {reason}"
                );
                match policy {
                    ShedPolicy::Reject => {
                        assert!(rec.read_fingerprint.is_empty());
                        assert_eq!(rec.read_query_secs, 0.0);
                    }
                    // Served shed modes return the exact committed answer.
                    ShedPolicy::ServeStale | ShedPolicy::DegradeBase => {
                        assert_eq!(
                            rec.read_fingerprint, rec.committed_fingerprint,
                            "{policy:?}: served a wrong answer while shedding"
                        );
                    }
                }
            }
        }
    }
}

/// Circuit breakers on the snapshot read path, where they earn their keep:
/// the writer patches the catalog around failures and matching routes
/// around hard outages, but *gray* slowness — a node serving reads at 100×
/// — is invisible to the namenode, so a frozen reader would pay it on
/// every access. The latency trip records slow successes as failures,
/// opens the breaker, later reads short-circuit straight to base tables
/// (answers unchanged), and once the node speeds up the deterministic
/// probes close every breaker again.
#[test]
fn breaker_opens_short_circuits_and_recloses_around_an_outage() {
    let (_, plans) = setup();
    // Measure the healthy cost envelope on the same topology, breakers off.
    let (mut probe, _) = build_sharded(1, FaultInjector::disabled(), chaos_config(), None);
    let mut healthy_max = 0.0f64;
    for (i, plan) in plans.iter().enumerate() {
        let o = probe
            .process_query(plan)
            .unwrap_or_else(|e| panic!("query {i} failed while probing: {e}"));
        healthy_max = healthy_max.max(o.query_secs);
    }
    drop(probe);
    let trip = healthy_max * 4.0;

    let (ds, fs) = build_sharded(
        1,
        FaultInjector::disabled(),
        chaos_config().with_breaker(BreakerConfig::after_failures(2, 2).with_latency_trip(trip)),
        None,
    );
    // Watch the run so the breaker's state changes land on the exported
    // transition counter (pinned below) as well as the event journal.
    let obs = Observer::new(ObsConfig::on());
    let mut ds = ds.with_observer(obs.clone());
    // Materialize views through the writer, then freeze an epoch.
    for (i, plan) in plans.iter().enumerate() {
        ds.process_query(plan)
            .unwrap_or_else(|e| panic!("query {i} failed while warming: {e}"));
    }
    let snapshot = ds
        .publish_snapshot()
        .expect("retrying backend must fork readers");
    let replay = |snapshot: &deepsea::core::ReadSnapshot| {
        let mut fingerprints = Vec::new();
        let mut short_circuits = 0u64;
        let mut slowest = 0.0f64;
        for (i, plan) in plans.iter().enumerate() {
            let a = snapshot
                .answer(plan)
                .unwrap_or_else(|e| panic!("read {i}: gray slowness must never error: {e}"));
            fingerprints.push(a.result.fingerprint());
            short_circuits += u64::from(a.trace.recovery.breaker_short_circuits);
            slowest = slowest.max(a.query_secs);
        }
        (fingerprints, short_circuits, slowest)
    };

    let (healthy, sc0, _) = replay(&snapshot);
    assert_eq!(sc0, 0, "healthy snapshot reads must not trip breakers");

    // Gray failure: every node crawls at 100×, but nothing ever *fails*.
    for n in 0..NODES {
        fs.set_node_slow(NodeId(n), 100.0);
    }
    let (pass1, sc1, slowest1) = replay(&snapshot);
    let (pass2, sc2, _) = replay(&snapshot);
    assert_eq!(pass1, healthy, "slow reads changed an answer");
    assert_eq!(pass2, healthy, "short-circuited reads changed an answer");
    assert!(
        slowest1 > trip,
        "100× slowness never exceeded the trip threshold ({slowest1} <= {trip})"
    );
    assert!(
        sc1 + sc2 > 0,
        "latency trips never opened a breaker into short-circuiting"
    );
    assert!(
        !ds.breakers().open_breakers().is_empty(),
        "mid-gray-failure, some breaker must be open"
    );

    for n in 0..NODES {
        fs.clear_node_slow(NodeId(n));
    }
    // Each open breaker needs probe_after = 2 accesses to reach its probe
    // and a fast success to close; a view used once per pass may need two
    // passes to get there, plus one to verify quiescence.
    let (pass3, _, _) = replay(&snapshot);
    let (pass4, _, _) = replay(&snapshot);
    let (pass5, sc5, _) = replay(&snapshot);
    assert_eq!(pass3, healthy);
    assert_eq!(pass4, healthy);
    assert_eq!(pass5, healthy);
    assert_eq!(sc5, 0, "nodes fast again: no more short-circuits");
    assert!(
        ds.breakers().open_breakers().is_empty(),
        "breakers stayed open after the slowness cleared and probes succeeded: {:?}",
        ds.breakers().open_breakers()
    );

    // The full open -> half_open -> closed cycle is exported under the
    // pinned Prometheus name, one series per target state.
    let samples =
        deepsea::obs::parse_prometheus(&obs.render_prometheus()).expect("prometheus output parses");
    for state in ["open", "half_open", "closed"] {
        let count = samples
            .iter()
            .find(|s| {
                s.name == "deepsea_breaker_transitions_total"
                    && s.labels.iter().any(|(k, v)| k == "view" && v == state)
            })
            .map(|s| s.value)
            .unwrap_or_else(|| panic!("missing breaker transition series for {state:?}"));
        assert!(count > 0.0, "no transitions into {state:?} recorded");
    }
}

/// The combined-schedule crash test: node outage + seeded I/O faults + a
/// gray-slow window all active when the process dies mid-outage. Recovery
/// rebuilds the catalog, resets breaker state (a health cache, deliberately
/// not journaled), and a second recovery from the same journal is
/// idempotent; the resumed run still answers every query exactly.
#[test]
fn crash_mid_outage_with_slow_window_recovers_idempotently() {
    let (catalog, plans) = setup();
    let journal = Arc::new(CatalogJournal::new());
    let config = chaos_config().with_breaker(BreakerConfig::after_failures(2, 2));
    let faults = FaultInjector::new(FaultConfig::seeded(13).with_transient_reads(0.05));
    let (mut ds, fs) = build_sharded(2, faults, config, Some(Arc::clone(&journal)));
    fs.set_hedge(Some(HedgeConfig::after_secs(0.01)));

    let half = plans.len() / 2;
    for (i, plan) in plans.iter().take(half).enumerate() {
        ds.process_query(plan)
            .unwrap_or_else(|e| panic!("query {i} failed pre-crash: {e}"));
    }
    // Outage + gray slowness both active at the crash point.
    fs.set_node_down(NodeId(1));
    fs.set_node_slow(NodeId(2), 3.0);
    for (i, plan) in plans.iter().enumerate().take(half + 3).skip(half) {
        ds.process_query(plan)
            .unwrap_or_else(|e| panic!("query {i} failed mid-outage: {e}"));
    }
    drop(ds); // crash: fs, journal, and the injected chaos survive

    let policy = RetryPolicy::default();
    let recover = || {
        DeepSea::recover(
            Arc::clone(catalog),
            Arc::clone(&fs),
            Box::new(RetryingBackend::new(
                SimBackend::new(ClusterSim::paper_default()),
                policy,
            )),
            chaos_config()
                .with_breaker(BreakerConfig::after_failures(2, 2))
                .with_retry(policy),
            Arc::clone(&journal),
        )
    };
    let (recovered, fsck1) = recover();
    let digest1 = recovered.registry().state_digest();
    assert!(
        recovered.breakers().open_breakers().is_empty(),
        "recovery must reset breaker state (fail-safe health cache)"
    );
    drop(recovered);

    // Second recovery from the same (post-fsck-compacted) journal.
    let (mut recovered, fsck2) = recover();
    assert_eq!(
        recovered.registry().state_digest(),
        digest1,
        "double recovery diverged"
    );
    assert_eq!(
        fsck2.replayed_records, 0,
        "first recovery's snapshot must have compacted the journal: {fsck1:?}"
    );

    // The resumed run rides out the still-active outage and slow window.
    fs.set_node_up(NodeId(1));
    fs.clear_node_slow(NodeId(2));
    for (i, plan) in plans.iter().enumerate().skip(half + 3) {
        let o = recovered
            .process_query(plan)
            .unwrap_or_else(|e| panic!("query {i} failed post-recovery: {e}"));
        assert!(
            !o.result.fingerprint().is_empty() || o.result.rows.is_empty(),
            "query {i}: malformed answer post-recovery"
        );
    }
}

/// A per-query retry budget bounds tail retries without changing answers:
/// under a flaky-read fault stream, the budgeted run answers every query
/// exactly like the unbudgeted one (fallbacks are exact), while never
/// charging more backoff to a query than the budget allows.
#[test]
fn retry_budget_bounds_tail_without_changing_answers() {
    let (_, plans) = setup();
    let run_with = |budget: Option<f64>| {
        let mut config = chaos_config();
        if let Some(b) = budget {
            config = config.with_retry_budget(b);
        }
        let faults = FaultInjector::new(FaultConfig::seeded(17).with_transient_reads(0.05));
        let (mut ds, _fs) = build_sharded(2, faults, config, None);
        let mut fingerprints = Vec::new();
        let mut max_penalty = 0.0f64;
        for (i, plan) in plans.iter().enumerate() {
            let o = ds
                .process_query(plan)
                .unwrap_or_else(|e| panic!("query {i} failed: {e}"));
            fingerprints.push(o.result.fingerprint());
            max_penalty = max_penalty.max(o.trace.recovery.penalty_secs);
        }
        (fingerprints, max_penalty)
    };
    let (unbudgeted, _) = run_with(None);
    let budget = 2.0;
    let (budgeted, max_penalty) = run_with(Some(budget));
    assert_eq!(
        budgeted, unbudgeted,
        "a retry budget changed an answer instead of a latency"
    );
    assert!(
        max_penalty <= budget + f64::EPSILON,
        "a query was charged {max_penalty}s of backoff against a {budget}s budget"
    );
}
