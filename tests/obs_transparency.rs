//! Observer bit-transparency: replaying the golden 50-query workload with
//! observability fully enabled must be indistinguishable — bit for bit —
//! from the unobserved run.
//!
//! This is the contract that makes `deepsea-obs` safe to leave attached in
//! every experiment: metrics, spans, and decision events are *derived* from
//! driver state, never an input to it. Each golden variant runs twice (obs
//! off vs `ObsConfig::on()`) and the test asserts identical per-query
//! `elapsed_secs` bits, `materialized`/`evicted` counts, pool bytes, and
//! registry `state_digest()` — while also checking the observer actually
//! collected a full record of the run, so transparency is never achieved by
//! simply not observing.

use std::sync::Arc;

use deepsea::bench::golden::{golden_catalog, golden_plans, golden_variants, GOLDEN_QUERIES};
use deepsea::core::driver::DeepSea;
use deepsea::core::{DeepSeaConfig, ObsConfig, Observer};
use deepsea::engine::{ClusterSim, LogicalPlan};
use deepsea::relation::Table;
use deepsea::storage::{BlockConfig, SimFs};

struct Fingerprint {
    elapsed_bits: Vec<u64>,
    materialized: Vec<usize>,
    evicted: Vec<usize>,
    pool_bytes: u64,
    state_digest: u64,
}

fn replay(cfg: DeepSeaConfig, plans: &[LogicalPlan], obs: Observer) -> Fingerprint {
    let catalog = golden_catalog();
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::<Table>::new(BlockConfig::default(), cluster.weights));
    let mut ds = DeepSea::with_parts(catalog, fs, cluster, cfg).with_observer(obs);
    let mut fp = Fingerprint {
        elapsed_bits: Vec::with_capacity(plans.len()),
        materialized: Vec::with_capacity(plans.len()),
        evicted: Vec::with_capacity(plans.len()),
        pool_bytes: 0,
        state_digest: 0,
    };
    for plan in plans {
        let out = ds.process_query(plan).expect("golden query failed");
        fp.elapsed_bits.push(out.elapsed_secs.to_bits());
        fp.materialized.push(out.materialized.len());
        fp.evicted.push(out.evicted.len());
    }
    fp.pool_bytes = ds.pool_bytes();
    fp.state_digest = ds.registry().state_digest();
    fp
}

#[test]
fn observer_is_bit_transparent_on_the_golden_workload() {
    let catalog = golden_catalog();
    let plans = golden_plans();
    assert_eq!(plans.len(), GOLDEN_QUERIES);

    for (label, cfg) in golden_variants(&catalog) {
        let off = replay(cfg, &plans, Observer::off());
        let obs = Observer::new(ObsConfig::on());
        let on = replay(cfg, &plans, obs.clone());

        assert_eq!(
            off.elapsed_bits, on.elapsed_bits,
            "{label}: per-query elapsed bits diverge with observability on"
        );
        assert_eq!(off.materialized, on.materialized, "{label}: materialized");
        assert_eq!(off.evicted, on.evicted, "{label}: evicted");
        assert_eq!(off.pool_bytes, on.pool_bytes, "{label}: pool bytes");
        assert_eq!(
            off.state_digest, on.state_digest,
            "{label}: registry state_digest diverges with observability on"
        );

        // Transparency must not come from inactivity: the enabled observer
        // saw every query and (on variants that evict) every eviction.
        let snap = obs.metrics_snapshot();
        assert_eq!(
            snap.counter("deepsea_queries_total", None),
            GOLDEN_QUERIES as u64,
            "{label}: observer missed queries"
        );
        let total_evicted: u64 = on.evicted.iter().map(|&e| e as u64).sum();
        assert_eq!(
            snap.counter("deepsea_evictions_total", None),
            total_evicted,
            "{label}: observer missed evictions"
        );
        let eviction_events = obs
            .events_snapshot()
            .iter()
            .filter(|r| r.event.kind() == "eviction")
            .count() as u64;
        assert_eq!(
            eviction_events, total_evicted,
            "{label}: every eviction must carry an audit event"
        );
    }
}
