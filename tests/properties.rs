//! Property-based tests over the core invariants of the paper's algorithms.

use deepsea::core::candidates::{candidates_for_interval, partition_candidates};
use deepsea::core::fragment::FragmentId;
use deepsea::core::interval::{covers, is_horizontal_partition, pairwise_disjoint, Interval};
use deepsea::core::matching::partition_matching;
use deepsea::core::mle::{adjusted_hits, fit_normal};
use deepsea::core::selection::{
    apply_size_bounds, equi_depth_intervals, select_configuration, CandidateKind, RankedItem,
};
use deepsea::relation::distr::normal_cdf;
use proptest::prelude::*;

/// Strategy: a non-empty interval inside [0, 10_000].
fn interval() -> impl Strategy<Value = Interval> {
    (0i64..10_000, 0i64..10_000).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

/// Strategy: an interval strictly inside the given domain.
fn interval_in(domain: Interval) -> impl Strategy<Value = Interval> {
    (domain.lo..=domain.hi, domain.lo..=domain.hi)
        .prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

proptest! {
    /// Splitting never loses or duplicates points.
    #[test]
    fn split_preserves_width(iv in interval(), p in 0i64..10_000) {
        if let Some((l, r)) = iv.split_at(p) {
            prop_assert_eq!(l.width() + r.width(), iv.width());
            prop_assert!(l.hi < r.lo);
            prop_assert!(is_horizontal_partition(&[l, r], &iv));
        }
    }

    /// `chop(k)` is a horizontal partition of the interval.
    #[test]
    fn chop_is_horizontal_partition(iv in interval(), k in 1usize..20) {
        let parts = iv.chop(k);
        prop_assert!(is_horizontal_partition(&parts, &iv));
        prop_assert_eq!(parts.iter().map(Interval::width).sum::<u64>(), iv.width());
    }

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn intersect_algebra(a in interval(), b in interval()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        if let Some(c) = a.intersect(&b) {
            prop_assert!(a.contains(&c) && b.contains(&c));
            prop_assert!(a.overlaps(&b));
        } else {
            prop_assert!(!a.overlaps(&b));
        }
    }

    /// Definition 7: the split pieces of one overlapped interval reunite to
    /// exactly that interval (no data loss in repartitioning).
    #[test]
    fn def7_candidates_partition_the_source(existing in interval(), query in interval()) {
        let cands = candidates_for_interval(&existing, &query);
        if !cands.is_empty() {
            prop_assert!(is_horizontal_partition(&cands, &existing));
        }
    }

    /// Splitting the whole domain at a query's endpoints always yields a
    /// horizontal partition of the domain.
    #[test]
    fn def7_initialization_covers_domain(query_raw in interval()) {
        let domain = Interval::new(0, 10_000);
        let query = query_raw.intersect(&domain).unwrap();
        let cands = partition_candidates(&[], &domain, &query);
        if cands.is_empty() {
            // Case 2: the query covered the whole domain.
            prop_assert_eq!(query, domain);
        } else {
            prop_assert!(is_horizontal_partition(&cands, &domain));
        }
    }

    /// Algorithm 2 finds a cover whenever the fragments form a partition of
    /// the domain, and every returned cover actually covers the range.
    #[test]
    fn algorithm2_covers_partitions(
        bounds in proptest::collection::vec(1i64..10_000, 0..6),
        q in interval_in(Interval::new(0, 10_000)),
    ) {
        // Build a horizontal partition of [0, 10_000] from random boundaries.
        let mut bs: Vec<i64> = bounds;
        bs.sort_unstable();
        bs.dedup();
        let mut frags = Vec::new();
        let mut lo = 0i64;
        for (i, b) in bs.iter().enumerate() {
            frags.push((FragmentId(i as u64), Interval::new(lo, b - 1)));
            lo = *b;
        }
        frags.push((FragmentId(bs.len() as u64), Interval::new(lo, 10_000)));

        let cover = partition_matching(&q, &frags).expect("partition always covers");
        let ivs: Vec<Interval> = cover
            .iter()
            .map(|id| frags.iter().find(|(f, _)| f == id).unwrap().1)
            .collect();
        prop_assert!(covers(&ivs, &q), "cover {ivs:?} must cover {q}");
        // Disjoint fragments => the cover is minimal (each fragment needed).
        for skip in 0..ivs.len() {
            let rest: Vec<Interval> = ivs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, iv)| *iv)
                .collect();
            prop_assert!(!covers(&rest, &q), "cover must be minimal");
        }
    }

    /// Algorithm 2 never fabricates coverage: with a gap, it returns None.
    #[test]
    fn algorithm2_detects_gaps(q in interval_in(Interval::new(0, 1_000))) {
        // Fragments leave [400, 600] uncovered.
        let frags = vec![
            (FragmentId(0), Interval::new(0, 399)),
            (FragmentId(1), Interval::new(601, 1_000)),
        ];
        let result = partition_matching(&q, &frags);
        let needs_gap = q.overlaps(&Interval::new(400, 600));
        prop_assert_eq!(result.is_some(), !needs_gap);
    }

    /// The greedy selection never exceeds Smax (estimated sizes).
    #[test]
    fn selection_respects_smax(
        sizes in proptest::collection::vec(1u64..1_000, 1..20),
        phis in proptest::collection::vec(0.0f64..100.0, 1..20),
        smax in 1u64..5_000,
    ) {
        let items: Vec<RankedItem> = sizes
            .iter()
            .zip(phis.iter().cycle())
            .enumerate()
            .map(|(i, (s, p))| RankedItem {
                kind: CandidateKind::WholeView(deepsea::core::filter_tree::ViewId(i as u64)),
                phi: *p,
                size: *s,
                materialized: i % 2 == 0,
            })
            .collect();
        let r = select_configuration(items, Some(smax));
        let kept: u64 = r.to_keep.iter().chain(&r.to_create).map(|i| i.size).sum();
        prop_assert!(kept <= smax, "kept {kept} > smax {smax}");
    }

    /// Equi-depth intervals always form a horizontal partition of the domain.
    #[test]
    fn equi_depth_partitions_domain(
        mut values in proptest::collection::vec(0i64..1_000, 1..300),
        k in 1usize..12,
    ) {
        values.sort_unstable();
        let domain = Interval::new(0, 999);
        let parts = equi_depth_intervals(&values, k, &domain);
        prop_assert!(is_horizontal_partition(&parts, &domain));
        prop_assert!(parts.len() <= k);
    }

    /// Size bounding keeps coverage and disjointness of a partition.
    #[test]
    fn size_bounds_preserve_partition(
        bounds in proptest::collection::vec(1i64..1_000, 0..5),
        min_bytes in 1u64..200,
    ) {
        let domain = Interval::new(0, 1_000);
        let mut bs = bounds;
        bs.sort_unstable();
        bs.dedup();
        let mut parts = Vec::new();
        let mut lo = 0;
        for b in &bs {
            parts.push(Interval::new(lo, b - 1));
            lo = *b;
        }
        parts.push(Interval::new(lo, 1_000));
        let out = apply_size_bounds(&parts, &domain, 1_000, min_bytes, Some(0.3));
        prop_assert!(covers(&out, &domain), "{out:?}");
        prop_assert!(pairwise_disjoint(&out), "{out:?}");
    }

    /// The MLE fit is well-defined and adjusted hits are conserved (never
    /// exceed the total) for any hit distribution.
    #[test]
    fn mle_adjusted_hits_bounded(
        hits in proptest::collection::vec(0.0f64..100.0, 1..10),
    ) {
        let frags: Vec<(Interval, f64)> = hits
            .iter()
            .enumerate()
            .map(|(i, h)| (Interval::new(i as i64 * 10, i as i64 * 10 + 9), *h))
            .collect();
        let total: f64 = hits.iter().sum();
        if let Some(fit) = fit_normal(&frags) {
            prop_assert!(fit.mean.is_finite());
            prop_assert!(fit.std > 0.0);
            let sum: f64 = frags.iter().map(|(iv, _)| adjusted_hits(total, &fit, iv)).sum();
            prop_assert!(sum <= total + 1e-6, "adjusted {sum} > total {total}");
        } else {
            prop_assert!(total <= f64::EPSILON);
        }
    }

    /// The normal CDF is monotone and bounded — the backbone of HA(I).
    #[test]
    fn normal_cdf_monotone(x in -1e4f64..1e4, y in -1e4f64..1e4, mean in -100f64..100.0, std in 0.1f64..100.0) {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        let ca = normal_cdf(a, mean, std);
        let cb = normal_cdf(b, mean, std);
        prop_assert!((0.0..=1.0).contains(&ca));
        prop_assert!((0.0..=1.0).contains(&cb));
        prop_assert!(ca <= cb + 1e-9);
    }
}
