//! Chaos suite: replay the golden 50-query workload (see
//! `deepsea-bench::golden`) under seeded fault schedules — transient read
//! failures, permanent fragment loss, latency spikes — and assert the
//! client-visible answers are bit-identical to the fault-free run.
//!
//! Views are opportunistic accelerators over durable base tables, so faults
//! may cost simulated time (retries, backoff, base-table fallbacks) but must
//! never change a result, leak pool accounting, or surface an error.
//!
//! The seeds replayed by the main test come from `CHAOS_SEEDS`
//! (comma-separated, default `1,7,42`), so CI can sweep schedules without a
//! rebuild: `CHAOS_SEEDS=1,7,42 cargo test -q --test chaos`.

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

use deepsea::bench::golden::{golden_catalog, golden_plans};
use deepsea::bench::harness::run_workload;
use deepsea::core::baselines;
use deepsea::core::{CatalogJournal, DeepSea, DeepSeaConfig};
use deepsea::engine::{Catalog, ClusterSim, LogicalPlan, RetryPolicy, RetryingBackend, SimBackend};
use deepsea::storage::{
    BlockConfig, FaultConfig, FaultInjector, Lsn, NodeConfig, NodeId, NodeSet, SimFs,
    SimulatedCrash,
};
use proptest::prelude::*;

/// The DS variant of the golden scenario (progressive partitioning, φ bound).
fn chaos_config() -> DeepSeaConfig {
    baselines::deepsea().with_phi(0.05)
}

fn setup() -> (&'static Arc<Catalog>, &'static Vec<LogicalPlan>) {
    static S: OnceLock<(Arc<Catalog>, Vec<LogicalPlan>)> = OnceLock::new();
    let s = S.get_or_init(|| (golden_catalog(), golden_plans()));
    (&s.0, &s.1)
}

/// What one replay under a fault schedule observed.
#[derive(Debug, Default)]
struct ChaosOutcome {
    /// Per-query result fingerprints (order-independent content hashes).
    fingerprints: Vec<Vec<String>>,
    /// Per-query elapsed simulated seconds.
    elapsed: Vec<f64>,
    retries: u64,
    penalty_secs: f64,
    quarantines: u64,
    fallbacks: u64,
    /// A view quarantined earlier in the run was materialized again later.
    rematerialized: bool,
    /// Corrupt reads detected by checksum verification (never served).
    corrupt: u64,
    /// Corruptions the injector actually introduced.
    injected_corruptions: u64,
    /// Catalog-journal activity summed over the run's traces.
    journal_appends: u64,
    journal_penalty_secs: f64,
    snapshots: u64,
}

/// Replay the first `limit` golden queries under `faults`, checking the
/// pool-accounting invariant after every query.
fn run_chaos(faults: FaultConfig, limit: usize) -> ChaosOutcome {
    run_chaos_with(faults, limit, None)
}

/// [`run_chaos`], optionally with a catalog journal attached to the driver.
fn run_chaos_with(
    faults: FaultConfig,
    limit: usize,
    journal: Option<Arc<CatalogJournal>>,
) -> ChaosOutcome {
    let (catalog, plans) = setup();
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::with_faults(
        BlockConfig::default(),
        cluster.weights,
        FaultInjector::new(faults),
    ));
    let policy = RetryPolicy::default();
    let backend = Box::new(RetryingBackend::new(SimBackend::new(cluster), policy));
    let mut ds = DeepSea::with_backend(
        Arc::clone(catalog),
        Arc::clone(&fs),
        backend,
        chaos_config().with_retry(policy),
    );
    if let Some(journal) = journal {
        ds = ds.with_journal(journal);
    }
    let mut out = ChaosOutcome::default();
    let mut quarantined_names: HashSet<String> = HashSet::new();
    for (i, plan) in plans.iter().take(limit).enumerate() {
        let o = ds
            .process_query(plan)
            .unwrap_or_else(|e| panic!("query {i}: faults must never surface to the client: {e}"));
        assert_eq!(
            fs.total_bytes(),
            ds.pool_bytes(),
            "query {i}: pool accounting must match the file system"
        );
        out.fingerprints.push(o.result.fingerprint());
        out.elapsed.push(o.elapsed_secs);
        out.retries += o.trace.recovery.retries as u64;
        out.penalty_secs += o.trace.recovery.penalty_secs;
        out.quarantines += o.trace.recovery.quarantined_views as u64;
        out.fallbacks += o.trace.recovery.base_table_fallbacks as u64;
        out.corrupt += o.trace.recovery.corrupt_fragments as u64;
        out.journal_appends += o.trace.durability.journal_appends as u64;
        out.journal_penalty_secs += o.trace.durability.journal_penalty_secs;
        out.snapshots += o.trace.durability.snapshots as u64;
        if o.materialized.iter().any(|m| {
            quarantined_names
                .iter()
                .any(|q| m == q || m.starts_with(&format!("{q}.")))
        }) {
            out.rematerialized = true;
        }
        quarantined_names.extend(o.quarantined.iter().cloned());
    }
    out.injected_corruptions = fs.fault_stats().corruptions;
    out
}

/// Fault-free per-query fingerprints — the equality baseline for every
/// schedule, computed once.
fn fault_free_fingerprints() -> &'static Vec<Vec<String>> {
    static GOLDEN: OnceLock<Vec<Vec<String>>> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let (_, plans) = setup();
        run_chaos(FaultConfig::disabled(), plans.len()).fingerprints
    })
}

fn chaos_seeds() -> Vec<u64> {
    std::env::var("CHAOS_SEEDS")
        .unwrap_or_else(|_| "1,7,42".into())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("CHAOS_SEEDS must be comma-separated u64s"))
        .collect()
}

/// The headline schedule: 12% transient reads, 5% permanent loss, 5%
/// transient writes, 5% latency spikes — harsh enough that every seed sees
/// quarantines and base-table fallbacks within 50 queries.
fn headline_faults(seed: u64) -> FaultConfig {
    FaultConfig::seeded(seed)
        .with_transient_reads(0.12)
        .with_permanent_loss(0.05)
        .with_transient_writes(0.05)
        .with_latency_spikes(0.05, 2.0)
}

#[test]
fn chaos_replay_is_bit_identical_to_fault_free() {
    let golden = fault_free_fingerprints();
    for seed in chaos_seeds() {
        let run = run_chaos(headline_faults(seed), golden.len());
        assert_eq!(run.fingerprints.len(), golden.len(), "seed {seed}");
        for (i, (got, want)) in run.fingerprints.iter().zip(golden).enumerate() {
            assert_eq!(
                got, want,
                "seed {seed}, query {i}: answer diverged under faults"
            );
        }
        // The schedule must actually exercise the recovery machinery, and
        // its cost must be visible in the trace.
        assert!(run.retries >= 1, "seed {seed}: no transient was retried");
        assert!(
            run.penalty_secs > 0.0,
            "seed {seed}: recovery charged no simulated time"
        );
        assert!(
            run.quarantines >= 1,
            "seed {seed}: no view was quarantined: {run:?}"
        );
        assert!(
            run.fallbacks >= 1,
            "seed {seed}: no base-table fallback happened: {run:?}"
        );
        assert!(
            run.rematerialized,
            "seed {seed}: no quarantined-but-hot view was re-materialized: {run:?}"
        );
    }
}

/// With the injector disabled, the whole fault layer — `try_read`,
/// `RetryingBackend`, the driver's retrying reads — must be bit-transparent:
/// identical elapsed seconds to the plain harness, and zero recovery
/// activity.
#[test]
fn zero_fault_schedule_is_bit_transparent() {
    let (catalog, plans) = setup();
    let chaos = run_chaos(FaultConfig::disabled(), plans.len());
    let plain = run_workload("DS", catalog, chaos_config(), plans);
    assert_eq!(chaos.elapsed.len(), plain.per_query.len());
    for (i, (a, b)) in chaos.elapsed.iter().zip(&plain.per_query).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.elapsed.to_bits(),
            "query {i}: disabled injector must not perturb timing ({a} vs {})",
            b.elapsed
        );
    }
    assert_eq!(chaos.retries, 0);
    assert_eq!(chaos.penalty_secs, 0.0);
    assert_eq!(chaos.quarantines, 0);
    assert_eq!(chaos.fallbacks, 0);
}

/// Seeds for the crash-restart sweep, from `CRASH_SEEDS` (comma-separated,
/// default `3,11`): `CRASH_SEEDS=3,11 cargo test -q --test chaos`.
fn crash_seeds() -> Vec<u64> {
    std::env::var("CRASH_SEEDS")
        .unwrap_or_else(|_| "3,11".into())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("CRASH_SEEDS must be comma-separated u64s"))
        .collect()
}

/// Minimal deterministic generator for crash-point schedules (Knuth LCG,
/// high bits only).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Suppress panic output for [`SimulatedCrash`] payloads: the crash harness
/// throws and catches them by design, and the default hook would spam the
/// test log. Every other panic keeps the default hook.
fn silence_simulated_crashes() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimulatedCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The durability headline: kill the driver at seeded journal-record
/// boundaries mid-query, cold-start it from the journal (`DeepSea::recover`),
/// and replay the interrupted query. Asserts, per seed:
///
/// - every answer is bit-identical to the fault-free golden run,
/// - recovery is idempotent (recovering twice from the same journal yields
///   the same registry digest and a second fsck with nothing to repair),
/// - the pool invariant `fs == registry == ledger` holds after every query
///   and after every recovery, with zero over-release violations.
#[test]
fn crash_restart_replay_is_bit_identical_and_recovery_idempotent() {
    silence_simulated_crashes();
    let golden = fault_free_fingerprints();
    let (catalog, plans) = setup();
    for seed in crash_seeds() {
        let cluster = ClusterSim::paper_default();
        let fs = Arc::new(SimFs::with_faults(
            BlockConfig::default(),
            cluster.weights,
            FaultInjector::disabled(),
        ));
        let journal = Arc::new(CatalogJournal::new());
        let policy = RetryPolicy::default();
        let mut ds = DeepSea::with_backend(
            Arc::clone(catalog),
            Arc::clone(&fs),
            Box::new(RetryingBackend::new(SimBackend::new(cluster), policy)),
            chaos_config().with_retry(policy),
        )
        .with_journal(Arc::clone(&journal));

        let mut rng = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);
        let mut crashes = 0u32;
        // Arm the first crash a few records out so it lands inside an early
        // query; later crashes are spread wider so the run makes progress.
        journal.arm_crash(Lsn(journal.next_lsn().0 + 1 + rng.next() % 8));

        let mut i = 0;
        while i < plans.len() {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ds.process_query(&plans[i])
            })) {
                Ok(res) => {
                    let o = res.unwrap_or_else(|e| {
                        panic!("seed {seed}, query {i}: fault-free query failed: {e}")
                    });
                    assert_eq!(
                        o.result.fingerprint(),
                        golden[i],
                        "seed {seed}, query {i}: answer diverged across crash-restarts"
                    );
                    assert_eq!(
                        fs.total_bytes(),
                        ds.pool_bytes(),
                        "seed {seed}, query {i}: pool accounting must match the file system"
                    );
                    assert_eq!(
                        ds.pool_accountant().used(),
                        ds.pool_bytes(),
                        "seed {seed}, query {i}: mirror ledger diverged"
                    );
                    assert_eq!(
                        ds.pool_accountant().violations(),
                        0,
                        "seed {seed}, query {i}: pool over-release"
                    );
                    i += 1;
                }
                Err(payload) => {
                    payload.downcast::<SimulatedCrash>().unwrap_or_else(|p| {
                        std::panic::resume_unwind(p); // a real bug, not a crash point
                    });
                    crashes += 1;
                    // The disk (SimFs) and the journal survive the crash; the
                    // in-memory driver is gone. Recover twice from the same
                    // journal: both restarts must converge on the same state,
                    // and the second fsck must find nothing left to repair.
                    let (first, _) = DeepSea::recover(
                        Arc::clone(catalog),
                        Arc::clone(&fs),
                        Box::new(RetryingBackend::new(
                            SimBackend::new(ClusterSim::paper_default()),
                            policy,
                        )),
                        chaos_config().with_retry(policy),
                        Arc::clone(&journal),
                    );
                    let (second, refsck) = DeepSea::recover(
                        Arc::clone(catalog),
                        Arc::clone(&fs),
                        Box::new(RetryingBackend::new(
                            SimBackend::new(ClusterSim::paper_default()),
                            policy,
                        )),
                        chaos_config().with_retry(policy),
                        Arc::clone(&journal),
                    );
                    assert_eq!(
                        first.registry().state_digest(),
                        second.registry().state_digest(),
                        "seed {seed}, crash {crashes}: recovery is not idempotent"
                    );
                    assert_eq!(
                        first.clock(),
                        second.clock(),
                        "seed {seed}, crash {crashes}: recovered clocks diverged"
                    );
                    assert_eq!(
                        (
                            refsck.orphan_files,
                            refsck.missing_files,
                            refsck.corrupt_files,
                            refsck.quarantined_views,
                        ),
                        (0, 0, 0, 0),
                        "seed {seed}, crash {crashes}: second fsck found repairs: {refsck:?}"
                    );
                    ds = second;
                    assert_eq!(
                        fs.total_bytes(),
                        ds.pool_bytes(),
                        "seed {seed}, crash {crashes}: fsck left the pool inconsistent"
                    );
                    if crashes < 4 {
                        journal.arm_crash(Lsn(journal.next_lsn().0 + 1 + rng.next() % 40));
                    }
                    // Replay the interrupted query (same index, no advance).
                }
            }
        }
        assert!(
            crashes >= 1,
            "seed {seed}: the schedule never crashed the driver"
        );
        assert_eq!(
            journal.stats().crashes,
            u64::from(crashes),
            "seed {seed}: journal crash counter disagrees with the harness"
        );
    }
}

/// Crash × node failure: the driver crashes mid-query while a node is
/// down, on an unreplicated 4-node cluster (so the outage genuinely blocks
/// fragments). Asserts:
///
/// - recovery works with the node still down (fsck verifies checksums, not
///   liveness, so the outage cannot fake data loss),
/// - double recovery from the same journal is idempotent (same digest,
///   second fsck clean),
/// - answers stay bit-identical to the fault-free golden run throughout,
/// - once the node returns, the run finishes clean and no fragment stays
///   quarantined.
#[test]
fn crash_during_node_outage_recovers_and_readmits() {
    silence_simulated_crashes();
    let golden = fault_free_fingerprints();
    let (catalog, plans) = setup();
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::with_cluster(
        BlockConfig::default(),
        cluster.weights,
        FaultInjector::disabled(),
        NodeSet::new(NodeConfig::new(4, 1)),
    ));
    let journal = Arc::new(CatalogJournal::new());
    let policy = RetryPolicy::default();
    let mut ds = DeepSea::with_backend(
        Arc::clone(catalog),
        Arc::clone(&fs),
        Box::new(RetryingBackend::new(SimBackend::new(cluster), policy)),
        chaos_config().with_retry(policy),
    )
    .with_journal(Arc::clone(&journal));

    let check = |ds: &DeepSea, i: usize, fp: &[String]| {
        assert_eq!(fp, golden[i], "query {i}: answer diverged");
        assert_eq!(
            fs.total_bytes(),
            ds.pool_bytes(),
            "query {i}: pool accounting must match the file system"
        );
        assert_eq!(
            ds.pool_accountant().violations(),
            0,
            "query {i}: pool over-release"
        );
    };

    // Phase 1: healthy prefix — views materialize, placements journal.
    for (i, plan) in plans.iter().enumerate().take(10) {
        let o = ds.process_query(plan).expect("healthy prefix");
        check(&ds, i, &o.result.fingerprint());
    }

    // Phase 2: node 1 goes down; serving continues (degraded where the
    // outage blocks fragments), then the crash lands mid-query with the
    // node still down.
    fs.set_node_down(NodeId(1));
    journal.arm_crash(Lsn(journal.next_lsn().0 + 3));
    let mut crashes = 0u32;
    let mut i = 10;
    while i < 20 {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ds.process_query(&plans[i])))
        {
            Ok(res) => {
                let o = res.unwrap_or_else(|e| panic!("query {i} failed under outage: {e}"));
                check(&ds, i, &o.result.fingerprint());
                i += 1;
            }
            Err(payload) => {
                payload.downcast::<SimulatedCrash>().unwrap_or_else(|p| {
                    std::panic::resume_unwind(p);
                });
                crashes += 1;
                // Recover twice from the same journal, node still down: the
                // restarts must converge and the second fsck must be clean —
                // an outage is not data loss, so fsck must not quarantine.
                let (first, _) = DeepSea::recover(
                    Arc::clone(catalog),
                    Arc::clone(&fs),
                    Box::new(RetryingBackend::new(
                        SimBackend::new(ClusterSim::paper_default()),
                        policy,
                    )),
                    chaos_config().with_retry(policy),
                    Arc::clone(&journal),
                );
                let (second, refsck) = DeepSea::recover(
                    Arc::clone(catalog),
                    Arc::clone(&fs),
                    Box::new(RetryingBackend::new(
                        SimBackend::new(ClusterSim::paper_default()),
                        policy,
                    )),
                    chaos_config().with_retry(policy),
                    Arc::clone(&journal),
                );
                assert_eq!(
                    first.registry().state_digest(),
                    second.registry().state_digest(),
                    "crash {crashes}: recovery under outage is not idempotent"
                );
                assert_eq!(
                    (
                        refsck.orphan_files,
                        refsck.missing_files,
                        refsck.corrupt_files,
                        refsck.quarantined_views,
                    ),
                    (0, 0, 0, 0),
                    "crash {crashes}: second fsck under outage found repairs: {refsck:?}"
                );
                ds = second;
                if crashes < 2 {
                    journal.arm_crash(Lsn(journal.next_lsn().0 + 10));
                }
            }
        }
    }
    assert!(
        crashes >= 1,
        "the schedule never crashed the driver during the outage"
    );

    // Phase 3: the node returns; the rest of the run is clean and every
    // fragment the outage quarantined is re-admitted.
    fs.set_node_up(NodeId(1));
    for (i, plan) in plans.iter().enumerate().skip(20) {
        let o = ds
            .process_query(plan)
            .unwrap_or_else(|e| panic!("query {i} failed after the node returned: {e}"));
        check(&ds, i, &o.result.fingerprint());
    }
    assert!(
        ds.offline_fragments().is_empty(),
        "fragments stayed quarantined after the node returned"
    );
}

/// A journaled run that never crashes must be bit-transparent: attaching the
/// journal adds appends, checkpoints, and snapshots, but with no faults it
/// charges zero simulated seconds, so per-query elapsed times are
/// bit-identical to the plain (journal-free) harness.
#[test]
fn journaled_zero_crash_run_is_bit_transparent() {
    let (catalog, plans) = setup();
    let journal = Arc::new(CatalogJournal::new());
    let run = run_chaos_with(
        FaultConfig::disabled(),
        plans.len(),
        Some(Arc::clone(&journal)),
    );
    let plain = run_workload("DS", catalog, chaos_config(), plans);
    assert_eq!(run.elapsed.len(), plain.per_query.len());
    for (i, (a, b)) in run.elapsed.iter().zip(&plain.per_query).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.elapsed.to_bits(),
            "query {i}: journaling must not perturb timing ({a} vs {})",
            b.elapsed
        );
    }
    for (i, (got, want)) in run
        .fingerprints
        .iter()
        .zip(fault_free_fingerprints())
        .enumerate()
    {
        assert_eq!(got, want, "query {i}: journaling changed an answer");
    }
    assert!(
        run.journal_appends > 0,
        "no records were journaled: {run:?}"
    );
    assert!(run.snapshots >= 1, "no snapshot was installed: {run:?}");
    assert_eq!(
        run.journal_penalty_secs, 0.0,
        "a fault-free journal charged time"
    );
    assert!(journal.stats().appends > 0);
    assert!(journal.stats().snapshots >= 1);
}

/// Checksummed fragments: under a seeded corruption schedule every corrupt
/// read is detected on read (the trace counts it), the owning view is
/// quarantined, and the corrupt bytes are never served — answers stay
/// bit-identical to the fault-free run.
#[test]
fn corrupt_reads_are_detected_quarantined_and_never_served() {
    let golden = fault_free_fingerprints();
    for seed in chaos_seeds() {
        let run = run_chaos(
            FaultConfig::seeded(seed).with_corruption(0.10),
            golden.len(),
        );
        for (i, (got, want)) in run.fingerprints.iter().zip(golden).enumerate() {
            assert_eq!(
                got, want,
                "seed {seed}, query {i}: corrupt data reached the client"
            );
        }
        assert!(
            run.injected_corruptions >= 1,
            "seed {seed}: the schedule injected no corruption: {run:?}"
        );
        assert!(
            run.corrupt >= 1,
            "seed {seed}: no corrupt read was detected: {run:?}"
        );
        assert!(
            run.quarantines >= 1,
            "seed {seed}: corruption did not quarantine the view: {run:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, max_shrink_iters: 0 })]

    /// Any fault schedule — arbitrary seed and rates — leaves a workload
    /// prefix's answers untouched and the pool accounting consistent (the
    /// invariant is asserted inside `run_chaos` after every query).
    #[test]
    fn arbitrary_fault_schedules_never_change_answers(
        seed in 0u64..1_000_000,
        transient in 0.0f64..0.30,
        permanent in 0.0f64..0.05,
        spike in 0.0f64..0.10,
        prefix in 8usize..14,
    ) {
        let faults = FaultConfig::seeded(seed)
            .with_transient_reads(transient)
            .with_permanent_loss(permanent)
            .with_transient_writes(transient / 2.0)
            .with_latency_spikes(spike, 1.5);
        let golden = fault_free_fingerprints();
        let run = run_chaos(faults, prefix);
        prop_assert_eq!(run.fingerprints.len(), prefix);
        for (i, (got, want)) in run.fingerprints.iter().zip(golden.iter().take(prefix)).enumerate() {
            prop_assert_eq!(got, want, "seed {}, query {}: answer diverged", seed, i);
        }
    }
}
