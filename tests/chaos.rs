//! Chaos suite: replay the golden 50-query workload (see
//! `deepsea-bench::golden`) under seeded fault schedules — transient read
//! failures, permanent fragment loss, latency spikes — and assert the
//! client-visible answers are bit-identical to the fault-free run.
//!
//! Views are opportunistic accelerators over durable base tables, so faults
//! may cost simulated time (retries, backoff, base-table fallbacks) but must
//! never change a result, leak pool accounting, or surface an error.
//!
//! The seeds replayed by the main test come from `CHAOS_SEEDS`
//! (comma-separated, default `1,7,42`), so CI can sweep schedules without a
//! rebuild: `CHAOS_SEEDS=1,7,42 cargo test -q --test chaos`.

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

use deepsea::bench::golden::{golden_catalog, golden_plans};
use deepsea::bench::harness::run_workload;
use deepsea::core::baselines;
use deepsea::core::{DeepSea, DeepSeaConfig};
use deepsea::engine::{Catalog, ClusterSim, LogicalPlan, RetryPolicy, RetryingBackend, SimBackend};
use deepsea::storage::{BlockConfig, FaultConfig, FaultInjector, SimFs};
use proptest::prelude::*;

/// The DS variant of the golden scenario (progressive partitioning, φ bound).
fn chaos_config() -> DeepSeaConfig {
    baselines::deepsea().with_phi(0.05)
}

fn setup() -> (&'static Arc<Catalog>, &'static Vec<LogicalPlan>) {
    static S: OnceLock<(Arc<Catalog>, Vec<LogicalPlan>)> = OnceLock::new();
    let s = S.get_or_init(|| (golden_catalog(), golden_plans()));
    (&s.0, &s.1)
}

/// What one replay under a fault schedule observed.
#[derive(Debug, Default)]
struct ChaosOutcome {
    /// Per-query result fingerprints (order-independent content hashes).
    fingerprints: Vec<Vec<String>>,
    /// Per-query elapsed simulated seconds.
    elapsed: Vec<f64>,
    retries: u64,
    penalty_secs: f64,
    quarantines: u64,
    fallbacks: u64,
    /// A view quarantined earlier in the run was materialized again later.
    rematerialized: bool,
}

/// Replay the first `limit` golden queries under `faults`, checking the
/// pool-accounting invariant after every query.
fn run_chaos(faults: FaultConfig, limit: usize) -> ChaosOutcome {
    let (catalog, plans) = setup();
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::with_faults(
        BlockConfig::default(),
        cluster.weights,
        FaultInjector::new(faults),
    ));
    let policy = RetryPolicy::default();
    let backend = Box::new(RetryingBackend::new(SimBackend::new(cluster), policy));
    let mut ds = DeepSea::with_backend(
        Arc::clone(catalog),
        Arc::clone(&fs),
        backend,
        chaos_config().with_retry(policy),
    );
    let mut out = ChaosOutcome::default();
    let mut quarantined_names: HashSet<String> = HashSet::new();
    for (i, plan) in plans.iter().take(limit).enumerate() {
        let o = ds
            .process_query(plan)
            .unwrap_or_else(|e| panic!("query {i}: faults must never surface to the client: {e}"));
        assert_eq!(
            fs.total_bytes(),
            ds.pool_bytes(),
            "query {i}: pool accounting must match the file system"
        );
        out.fingerprints.push(o.result.fingerprint());
        out.elapsed.push(o.elapsed_secs);
        out.retries += o.trace.recovery.retries as u64;
        out.penalty_secs += o.trace.recovery.penalty_secs;
        out.quarantines += o.trace.recovery.quarantined_views as u64;
        out.fallbacks += o.trace.recovery.base_table_fallbacks as u64;
        if o.materialized.iter().any(|m| {
            quarantined_names
                .iter()
                .any(|q| m == q || m.starts_with(&format!("{q}.")))
        }) {
            out.rematerialized = true;
        }
        quarantined_names.extend(o.quarantined.iter().cloned());
    }
    out
}

/// Fault-free per-query fingerprints — the equality baseline for every
/// schedule, computed once.
fn fault_free_fingerprints() -> &'static Vec<Vec<String>> {
    static GOLDEN: OnceLock<Vec<Vec<String>>> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let (_, plans) = setup();
        run_chaos(FaultConfig::disabled(), plans.len()).fingerprints
    })
}

fn chaos_seeds() -> Vec<u64> {
    std::env::var("CHAOS_SEEDS")
        .unwrap_or_else(|_| "1,7,42".into())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("CHAOS_SEEDS must be comma-separated u64s"))
        .collect()
}

/// The headline schedule: 12% transient reads, 5% permanent loss, 5%
/// transient writes, 5% latency spikes — harsh enough that every seed sees
/// quarantines and base-table fallbacks within 50 queries.
fn headline_faults(seed: u64) -> FaultConfig {
    FaultConfig::seeded(seed)
        .with_transient_reads(0.12)
        .with_permanent_loss(0.05)
        .with_transient_writes(0.05)
        .with_latency_spikes(0.05, 2.0)
}

#[test]
fn chaos_replay_is_bit_identical_to_fault_free() {
    let golden = fault_free_fingerprints();
    for seed in chaos_seeds() {
        let run = run_chaos(headline_faults(seed), golden.len());
        assert_eq!(run.fingerprints.len(), golden.len(), "seed {seed}");
        for (i, (got, want)) in run.fingerprints.iter().zip(golden).enumerate() {
            assert_eq!(
                got, want,
                "seed {seed}, query {i}: answer diverged under faults"
            );
        }
        // The schedule must actually exercise the recovery machinery, and
        // its cost must be visible in the trace.
        assert!(run.retries >= 1, "seed {seed}: no transient was retried");
        assert!(
            run.penalty_secs > 0.0,
            "seed {seed}: recovery charged no simulated time"
        );
        assert!(
            run.quarantines >= 1,
            "seed {seed}: no view was quarantined: {run:?}"
        );
        assert!(
            run.fallbacks >= 1,
            "seed {seed}: no base-table fallback happened: {run:?}"
        );
        assert!(
            run.rematerialized,
            "seed {seed}: no quarantined-but-hot view was re-materialized: {run:?}"
        );
    }
}

/// With the injector disabled, the whole fault layer — `try_read`,
/// `RetryingBackend`, the driver's retrying reads — must be bit-transparent:
/// identical elapsed seconds to the plain harness, and zero recovery
/// activity.
#[test]
fn zero_fault_schedule_is_bit_transparent() {
    let (catalog, plans) = setup();
    let chaos = run_chaos(FaultConfig::disabled(), plans.len());
    let plain = run_workload("DS", catalog, chaos_config(), plans);
    assert_eq!(chaos.elapsed.len(), plain.per_query.len());
    for (i, (a, b)) in chaos.elapsed.iter().zip(&plain.per_query).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.elapsed.to_bits(),
            "query {i}: disabled injector must not perturb timing ({a} vs {})",
            b.elapsed
        );
    }
    assert_eq!(chaos.retries, 0);
    assert_eq!(chaos.penalty_secs, 0.0);
    assert_eq!(chaos.quarantines, 0);
    assert_eq!(chaos.fallbacks, 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, max_shrink_iters: 0 })]

    /// Any fault schedule — arbitrary seed and rates — leaves a workload
    /// prefix's answers untouched and the pool accounting consistent (the
    /// invariant is asserted inside `run_chaos` after every query).
    #[test]
    fn arbitrary_fault_schedules_never_change_answers(
        seed in 0u64..1_000_000,
        transient in 0.0f64..0.30,
        permanent in 0.0f64..0.05,
        spike in 0.0f64..0.10,
        prefix in 8usize..14,
    ) {
        let faults = FaultConfig::seeded(seed)
            .with_transient_reads(transient)
            .with_permanent_loss(permanent)
            .with_transient_writes(transient / 2.0)
            .with_latency_spikes(spike, 1.5);
        let golden = fault_free_fingerprints();
        let run = run_chaos(faults, prefix);
        prop_assert_eq!(run.fingerprints.len(), prefix);
        for (i, (got, want)) in run.fingerprints.iter().zip(golden.iter().take(prefix)).enumerate() {
            prop_assert_eq!(got, want, "seed {}, query {}: answer diverged", seed, i);
        }
    }
}
