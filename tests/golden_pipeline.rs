//! Golden replay of a fixed 50-query workload (see `deepsea-bench::golden`).
//!
//! Captured from the pre-refactor monolithic driver, these sequences pin the
//! staged pipeline to *bit-exact* behaviour: per-query `elapsed_secs` plus
//! `materialized`/`evicted` counts under three variants that together
//! exercise every stage (matching, rewriting, candidates, selection,
//! materialization, eviction).
//!
//! To regenerate after an intentional behaviour change:
//! `cargo run --release --example golden_capture`.

use deepsea::bench::golden::{golden_catalog, golden_plans, golden_variants, GOLDEN_QUERIES};
use deepsea::bench::harness::run_workload;

#[rustfmt::skip]
const DS_ELAPSED: [f64; 50] = [
    94.26403191239248, 6.6837266, 128.14399609139787, 174.48052980698924,
    6.6837266, 6.6837266, 51.46570083440861, 51.41286115268818,
    37.1648502704213, 17.0099399104642, 51.44044260645162, 45.550813258399046,
    15.059420416715543, 6.61954239, 6.6837266, 6.61954239,
    51.423022744086026, 51.3931186483871, 51.44044260645162, 6.61954239,
    51.455636616129034, 16.861376102419356, 37.19770338665609, 14.887497024838709,
    36.293126159718, 51.44044260645162, 6.6463076, 14.788928484870969,
    6.6837266, 14.968985939477726, 6.61954239, 6.61954239,
    78.4662252785663, 36.2954621148306, 6.6699458400000005, 6.61954239,
    51.3931186483871, 51.41286115268818, 6.6837266, 6.69669008,
    13.773956600903226, 51.388957229032265, 6.6837266, 51.39031206129033,
    51.39573153763441, 51.41286115268818, 51.41286115268818, 51.43841028602151,
    51.405796277419356, 62.867919139115436,
];
#[rustfmt::skip]
const DS_MATERIALIZED: [usize; 50] = [23, 0, 23, 24, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 23, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 23];
#[rustfmt::skip]
const DS_EVICTED: [usize; 50] = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
// DS: total 1818.7s, final pool 213115407230 bytes

#[rustfmt::skip]
const DS_TIGHT_ELAPSED: [f64; 50] = [
    56.81578896991935, 6.6837266, 73.29883480107527, 92.80794916182795,
    6.6837266, 6.6837266, 74.70636165376344, 13.649194732258064,
    37.1648502704213, 91.129924455914, 73.08821819569891, 45.550813258399046,
    91.05637567096774, 6.61954239, 6.6837266, 6.61954239,
    73.04887963333334, 72.98132872473118, 7.41279715, 6.61954239,
    73.12611341290322, 73.00716674946236, 37.19770338665609, 73.04681429784945,
    36.293126159718, 7.41279715, 6.6463076, 57.173874455,
    14.586015915591398, 72.99831787634407, 6.61954239, 6.61954239,
    46.92993495598566, 36.2954621148306, 6.6699458400000005, 6.61954239,
    6.91754478, 73.02485513548388, 6.6837266, 6.69669008,
    57.1907298338172, 72.97054003118281, 6.6837266, 72.96437064032257,
    72.96994106989246, 7.35997792, 7.35997792, 73.08297628709677,
    72.98001026774193, 36.35609118212619,
];
#[rustfmt::skip]
const DS_TIGHT_MATERIALIZED: [usize; 50] = [2, 0, 1, 2, 0, 0, 2, 0, 1, 1, 1, 1, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1, 1, 1, 1, 0, 0, 2, 1, 1, 0, 0, 2, 1, 0, 0, 0, 1, 0, 0, 2, 1, 0, 1, 1, 0, 0, 1, 1, 1];
#[rustfmt::skip]
const DS_TIGHT_EVICTED: [usize; 50] = [0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0];
// DS-tight: total 1983.8s, final pool 837167473 bytes

#[rustfmt::skip]
const NP_ELAPSED: [f64; 50] = [
    55.41349965432796, 6.6837266, 73.29883480107527, 91.11601367795699,
    6.6837266, 6.6837266, 73.0399100408602, 73.02485513548388,
    37.1648502704213, 118.03637606881722, 51.44044260645162, 45.550813258399046,
    124.41444018709677, 6.61954239, 6.6837266, 6.61954239,
    51.423022744086026, 51.3931186483871, 51.44044260645162, 6.61954239,
    51.455636616129034, 73.00716674946236, 37.19770338665609, 73.04681429784945,
    36.293126159718, 51.44044260645162, 6.6463076, 55.392624705,
    6.6837266, 72.99831787634407, 6.61954239, 6.61954239,
    45.39525753663082, 36.2954621148306, 6.6699458400000005, 6.61954239,
    51.3931186483871, 7.35997792, 6.6837266, 6.69669008,
    55.393364498333334, 51.388957229032265, 6.6837266, 51.39031206129033,
    51.39573153763441, 7.35997792, 7.35997792, 51.43841028602151,
    51.405796277419356, 36.35609118212619,
];
#[rustfmt::skip]
const NP_MATERIALIZED: [usize; 50] = [1, 0, 1, 1, 0, 0, 1, 1, 1, 2, 0, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 1, 0, 1, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1];
#[rustfmt::skip]
const NP_EVICTED: [usize; 50] = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
// NP: total 1958.0s, final pool 108203473696 bytes

struct Golden {
    label: &'static str,
    elapsed: &'static [f64; GOLDEN_QUERIES],
    materialized: &'static [usize; GOLDEN_QUERIES],
    evicted: &'static [usize; GOLDEN_QUERIES],
}

const GOLDENS: [Golden; 3] = [
    Golden {
        label: "DS",
        elapsed: &DS_ELAPSED,
        materialized: &DS_MATERIALIZED,
        evicted: &DS_EVICTED,
    },
    Golden {
        label: "DS-tight",
        elapsed: &DS_TIGHT_ELAPSED,
        materialized: &DS_TIGHT_MATERIALIZED,
        evicted: &DS_TIGHT_EVICTED,
    },
    Golden {
        label: "NP",
        elapsed: &NP_ELAPSED,
        materialized: &NP_MATERIALIZED,
        evicted: &NP_EVICTED,
    },
];

#[test]
fn pipeline_replays_golden_sequences_exactly() {
    let catalog = golden_catalog();
    let plans = golden_plans();
    let variants = golden_variants(&catalog);
    assert_eq!(variants.len(), GOLDENS.len());

    for ((label, cfg), golden) in variants.into_iter().zip(&GOLDENS) {
        assert_eq!(label, golden.label);
        let r = run_workload(label, &catalog, cfg, &plans);
        assert_eq!(r.per_query.len(), GOLDEN_QUERIES, "{label}: query count");
        for (i, q) in r.per_query.iter().enumerate() {
            assert_eq!(
                q.elapsed.to_bits(),
                golden.elapsed[i].to_bits(),
                "{label} query {i}: elapsed {} != golden {}",
                q.elapsed,
                golden.elapsed[i]
            );
            assert_eq!(
                q.materialized, golden.materialized[i],
                "{label} query {i}: materialized count"
            );
            assert_eq!(
                q.evicted, golden.evicted[i],
                "{label} query {i}: evicted count"
            );
        }
    }
}

/// The golden scenario must keep exercising every pipeline stage — if a
/// tuning change makes one of these counts vanish, the golden test would
/// silently stop covering that stage.
#[test]
fn golden_scenario_exercises_all_stages() {
    assert!(DS_MATERIALIZED.iter().sum::<usize>() > 0, "DS materializes");
    assert!(
        DS_MATERIALIZED.iter().any(|&m| m > 1),
        "DS splits views into fragments"
    );
    assert!(
        DS_TIGHT_EVICTED.iter().sum::<usize>() > 0,
        "DS-tight evicts under pool pressure"
    );
    assert!(
        NP_MATERIALIZED.iter().sum::<usize>() > 0,
        "NP materializes whole views"
    );
}
