//! Concurrency suite: replay the golden 50-query workload as K clients over
//! seeded interleaving sweeps and assert the serialized-commit series is
//! bit-identical to the single-client serial run — same result
//! fingerprints, same per-query execution seconds (to the bit), same
//! registry `state_digest` after the schedule drains.
//!
//! The serving layer's determinism contract (see `deepsea-core::server`):
//! interleavings move client latencies and snapshot epochs, never committed
//! state. Replaying the same seed reproduces every arrival, interleaving,
//! latency and epoch bit for bit.
//!
//! The seeds swept by the main tests come from `INTERLEAVE_SEEDS`
//! (comma-separated, default `1,7,42`), so CI can sweep schedules without a
//! rebuild: `INTERLEAVE_SEEDS=5,6 cargo test -q --test concurrency`.

use std::sync::{Arc, OnceLock};

use deepsea::bench::golden::{golden_catalog, golden_plans};
use deepsea::core::baselines;
use deepsea::core::{DeepSea, DeepSeaConfig, ServeReport, ServerConfig, ViewServer};
use deepsea::engine::{Catalog, ClusterSim, LogicalPlan};
use deepsea::storage::{BlockConfig, SimFs};
use proptest::prelude::*;

/// The DS variant of the golden scenario (progressive partitioning, φ bound).
fn ds_config() -> DeepSeaConfig {
    baselines::deepsea().with_phi(0.05)
}

fn setup() -> (&'static Arc<Catalog>, &'static Vec<LogicalPlan>) {
    static S: OnceLock<(Arc<Catalog>, Vec<LogicalPlan>)> = OnceLock::new();
    let s = S.get_or_init(|| (golden_catalog(), golden_plans()));
    (&s.0, &s.1)
}

fn fresh_driver(config: DeepSeaConfig) -> DeepSea {
    let (catalog, _) = setup();
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::new(BlockConfig::default(), cluster.weights));
    DeepSea::with_parts(Arc::clone(catalog), fs, cluster, config)
}

/// What the single-client serial run committed, captured once per config.
struct SerialBaseline {
    fingerprints: Vec<Vec<String>>,
    query_secs_bits: Vec<u64>,
    state_digest: u64,
}

fn serial_baseline(config: DeepSeaConfig, limit: usize) -> SerialBaseline {
    let (_, plans) = setup();
    let mut ds = fresh_driver(config);
    let mut fingerprints = Vec::with_capacity(limit);
    let mut query_secs_bits = Vec::with_capacity(limit);
    for plan in plans.iter().take(limit) {
        let out = ds.process_query(plan).expect("fault-free run");
        fingerprints.push(out.result.fingerprint());
        query_secs_bits.push(out.query_secs.to_bits());
    }
    SerialBaseline {
        fingerprints,
        query_secs_bits,
        state_digest: ds.registry().state_digest(),
    }
}

fn ds_serial() -> &'static SerialBaseline {
    static S: OnceLock<SerialBaseline> = OnceLock::new();
    S.get_or_init(|| {
        let (_, plans) = setup();
        serial_baseline(ds_config(), plans.len())
    })
}

fn serve(config: DeepSeaConfig, server: ServerConfig, limit: usize) -> ServeReport {
    let (_, plans) = setup();
    let mut srv = ViewServer::new(fresh_driver(config), server);
    srv.run(&plans[..limit]).expect("fault-free schedule")
}

fn interleave_seeds() -> Vec<u64> {
    std::env::var("INTERLEAVE_SEEDS")
        .unwrap_or_else(|_| "1,7,42".into())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .expect("INTERLEAVE_SEEDS must be comma-separated u64s")
        })
        .collect()
}

/// Committed series and end state must match the serial run bit for bit,
/// for every seed and client count swept.
fn assert_commits_match_serial(report: &ServeReport, seed: u64, clients: usize) {
    let serial = ds_serial();
    assert_eq!(
        report.records.len(),
        serial.fingerprints.len(),
        "seed {seed}, K={clients}: ticket count"
    );
    for rec in &report.records {
        let i = rec.ticket;
        assert_eq!(
            &rec.committed_fingerprint, &serial.fingerprints[i],
            "seed {seed}, K={clients}, ticket {i}: committed answer diverged"
        );
        assert_eq!(
            rec.committed_query_secs.to_bits(),
            serial.query_secs_bits[i],
            "seed {seed}, K={clients}, ticket {i}: committed cost diverged"
        );
        // Epoch-independence: a read against any (possibly stale) snapshot
        // returns the same rows the committed execution returns.
        assert_eq!(
            &rec.read_fingerprint, &rec.committed_fingerprint,
            "seed {seed}, K={clients}, ticket {i}: snapshot read returned different rows"
        );
    }
    assert_eq!(
        report.state_digest, serial.state_digest,
        "seed {seed}, K={clients}: registry state diverged after drain"
    );
}

#[test]
fn concurrent_commits_bit_identical_to_serial() {
    for &clients in &[2usize, 3, 5] {
        for seed in interleave_seeds() {
            let report = serve(
                ds_config(),
                ServerConfig {
                    clients,
                    seed,
                    mean_gap_secs: 30.0,
                    ..ServerConfig::default()
                },
                ds_serial().fingerprints.len(),
            );
            assert_commits_match_serial(&report, seed, clients);
        }
    }
}

#[test]
fn single_client_schedule_matches_serial_too() {
    // K=1 degenerates to the serial order with arrival jitter; committed
    // state must still match exactly.
    for seed in interleave_seeds() {
        let report = serve(
            ds_config(),
            ServerConfig {
                clients: 1,
                seed,
                mean_gap_secs: 30.0,
                ..ServerConfig::default()
            },
            ds_serial().fingerprints.len(),
        );
        assert_commits_match_serial(&report, seed, 1);
    }
}

#[test]
fn same_seed_replays_bit_identically() {
    let cfg = ServerConfig {
        clients: 3,
        seed: 7,
        mean_gap_secs: 30.0,
        ..ServerConfig::default()
    };
    let n = ds_serial().fingerprints.len();
    let a = serve(ds_config(), cfg.clone(), n);
    let b = serve(ds_config(), cfg, n);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.client, rb.client,
            "ticket {}: client assignment",
            ra.ticket
        );
        assert_eq!(ra.read_epoch, rb.read_epoch, "ticket {}: epoch", ra.ticket);
        assert_eq!(
            ra.arrival_secs.to_bits(),
            rb.arrival_secs.to_bits(),
            "ticket {}: arrival",
            ra.ticket
        );
        assert_eq!(
            ra.latency_secs.to_bits(),
            rb.latency_secs.to_bits(),
            "ticket {}: latency",
            ra.ticket
        );
        assert_eq!(
            ra.commit_done_secs.to_bits(),
            rb.commit_done_secs.to_bits(),
            "ticket {}: commit time",
            ra.ticket
        );
        assert_eq!(
            ra.divergent, rb.divergent,
            "ticket {}: divergence",
            ra.ticket
        );
    }
    assert_eq!(a.state_digest, b.state_digest);
    assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
}

#[test]
fn interleavings_actually_overlap_and_lag() {
    // A tight arrival process on several clients must produce genuinely
    // stale reads (epoch lag > 0) — otherwise the suite proves nothing —
    // and yet every committed outcome stays canonical (checked above; here
    // we check the schedule itself shifted).
    let report = serve(
        ds_config(),
        ServerConfig {
            clients: 4,
            seed: 42,
            mean_gap_secs: 5.0,
            ..ServerConfig::default()
        },
        ds_serial().fingerprints.len(),
    );
    assert!(
        report.max_epoch_lag > 0,
        "tight schedule never produced a stale read: {report:?}"
    );
    let clients_used: std::collections::HashSet<usize> =
        report.records.iter().map(|r| r.client).collect();
    assert!(
        clients_used.len() > 1,
        "schedule never used a second client"
    );
    // Different seeds shift the schedule (arrivals differ), not the commits.
    let other = serve(
        ds_config(),
        ServerConfig {
            clients: 4,
            seed: 43,
            mean_gap_secs: 5.0,
            ..ServerConfig::default()
        },
        ds_serial().fingerprints.len(),
    );
    assert_ne!(
        report.records[0].arrival_secs.to_bits(),
        other.records[0].arrival_secs.to_bits(),
        "different seeds must draw different arrivals"
    );
}

#[test]
fn eviction_pressure_under_concurrency_stays_canonical() {
    // DS-tight: Smax at 1/40 of the base data forces the Φ/decay eviction
    // path; the committed trajectory must still replay bit-identically
    // against its own serial baseline.
    let (catalog, plans) = setup();
    let tight = baselines::deepsea()
        .with_phi(0.05)
        .with_smax(catalog.total_base_bytes() / 40);
    let serial = serial_baseline(tight, plans.len());
    let report = serve(
        tight,
        ServerConfig {
            clients: 3,
            seed: 7,
            mean_gap_secs: 10.0,
            ..ServerConfig::default()
        },
        plans.len(),
    );
    for rec in &report.records {
        assert_eq!(
            &rec.committed_fingerprint, &serial.fingerprints[rec.ticket],
            "ticket {}: answer diverged under pressure",
            rec.ticket
        );
        assert_eq!(
            rec.committed_query_secs.to_bits(),
            serial.query_secs_bits[rec.ticket],
            "ticket {}: cost diverged under pressure",
            rec.ticket
        );
    }
    assert_eq!(report.state_digest, serial.state_digest);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, max_shrink_iters: 0 })]

    /// Arbitrary interleavings — any seed, client count and arrival rate —
    /// leave a workload prefix's committed series and end state
    /// bit-identical to the serial run of the same prefix.
    #[test]
    fn arbitrary_interleavings_never_change_commits(
        seed in 0u64..1_000_000,
        clients in 1usize..6,
        mean_gap in 1.0f64..120.0,
        prefix in 8usize..14,
    ) {
        let serial = serial_baseline(ds_config(), prefix);
        let report = serve(
            ds_config(),
            ServerConfig {
                clients,
                seed,
                mean_gap_secs: mean_gap,                ..ServerConfig::default()
            },
            prefix,
        );
        prop_assert_eq!(report.records.len(), prefix);
        for rec in &report.records {
            prop_assert_eq!(
                &rec.committed_fingerprint,
                &serial.fingerprints[rec.ticket],
                "seed {}, K {}, ticket {}: committed answer diverged",
                seed, clients, rec.ticket
            );
            prop_assert_eq!(
                rec.committed_query_secs.to_bits(),
                serial.query_secs_bits[rec.ticket],
                "seed {}, K {}, ticket {}: committed cost diverged",
                seed, clients, rec.ticket
            );
            prop_assert_eq!(
                &rec.read_fingerprint,
                &rec.committed_fingerprint,
                "seed {}, K {}, ticket {}: stale read returned different rows",
                seed, clients, rec.ticket
            );
        }
        prop_assert_eq!(report.state_digest, serial.state_digest);
    }
}

/// Real worker threads: reads race with publication under genuine OS
/// preemption, yet the committed series and end state stay bit-identical to
/// the serial run, and every racing read returns the canonical rows.
#[cfg(feature = "real-threads")]
#[test]
fn real_threads_commits_bit_identical_to_serial() {
    let (_, plans) = setup();
    let serial = ds_serial();
    for &clients in &[2usize, 4] {
        let mut srv = ViewServer::new(
            fresh_driver(ds_config()),
            ServerConfig {
                clients,
                seed: 7,
                mean_gap_secs: 30.0,
                ..ServerConfig::default()
            },
        );
        let report = srv.run_threaded(plans).expect("fault-free run");
        assert_eq!(report.records.len(), serial.fingerprints.len());
        for rec in &report.records {
            assert_eq!(
                &rec.committed_fingerprint, &serial.fingerprints[rec.ticket],
                "K={clients}, ticket {}: committed answer diverged",
                rec.ticket
            );
            assert_eq!(
                rec.committed_query_secs.to_bits(),
                serial.query_secs_bits[rec.ticket],
                "K={clients}, ticket {}: committed cost diverged",
                rec.ticket
            );
            assert_eq!(
                &rec.read_fingerprint, &rec.committed_fingerprint,
                "K={clients}, ticket {}: racing read returned different rows",
                rec.ticket
            );
        }
        assert_eq!(report.state_digest, serial.state_digest, "K={clients}");
    }
}
