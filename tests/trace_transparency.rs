//! Causal-trace bit-transparency: serving the golden workload with span
//! tracing enabled must be indistinguishable — bit for bit — from the
//! untraced run, and capping span retention must change *nothing* but the
//! span log itself.
//!
//! This is the serving-layer extension of `obs_transparency`: the span
//! contexts threaded through admission, snapshot reads, retry ladders,
//! hedge races and commits are derived from scheduler state, never an
//! input to it. The test also pins the span-cap contract: a capped run
//! keeps a deterministic prefix of the uncapped span log, counts what it
//! dropped, and perturbs no answer.

use std::sync::Arc;

use deepsea::bench::golden::{golden_catalog, golden_plans, GOLDEN_QUERIES};
use deepsea::core::{
    baselines, DeepSea, ObsConfig, Observer, ServeReport, ServerConfig, ViewServer,
};
use deepsea::engine::ClusterSim;
use deepsea::obs::TraceForest;
use deepsea::storage::{BlockConfig, SimFs};

fn serve_with(obs: Observer) -> ServeReport {
    let catalog = golden_catalog();
    let plans = golden_plans();
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::new(BlockConfig::default(), cluster.weights));
    let ds = DeepSea::with_parts(catalog, fs, cluster, baselines::deepsea().with_phi(0.05))
        .with_observer(obs);
    let mut server = ViewServer::new(
        ds,
        ServerConfig {
            clients: 3,
            seed: 7,
            mean_gap_secs: 5.0,
            ..ServerConfig::default()
        },
    );
    server.run(&plans).expect("golden serve failed")
}

struct Fingerprint {
    latency_bits: Vec<u64>,
    read_fingerprints: Vec<Vec<String>>,
    committed_fingerprints: Vec<Vec<String>>,
    state_digest: u64,
    makespan_bits: u64,
}

fn fingerprint(report: &ServeReport) -> Fingerprint {
    Fingerprint {
        latency_bits: report
            .records
            .iter()
            .map(|r| r.latency_secs.to_bits())
            .collect(),
        read_fingerprints: report
            .records
            .iter()
            .map(|r| r.read_fingerprint.clone())
            .collect(),
        committed_fingerprints: report.committed_fingerprints(),
        state_digest: report.state_digest,
        makespan_bits: report.makespan_secs.to_bits(),
    }
}

fn assert_identical(a: &Fingerprint, b: &Fingerprint, what: &str) {
    assert_eq!(a.latency_bits, b.latency_bits, "{what}: latency bits");
    assert_eq!(
        a.read_fingerprints, b.read_fingerprints,
        "{what}: read answers"
    );
    assert_eq!(
        a.committed_fingerprints, b.committed_fingerprints,
        "{what}: committed answers"
    );
    assert_eq!(a.state_digest, b.state_digest, "{what}: state digest");
    assert_eq!(a.makespan_bits, b.makespan_bits, "{what}: makespan");
}

#[test]
fn tracing_is_bit_transparent_on_the_served_golden_workload() {
    let untraced = fingerprint(&serve_with(Observer::off()));

    let obs = Observer::new(ObsConfig::on());
    let traced_report = serve_with(obs.clone());
    let traced = fingerprint(&traced_report);

    assert_identical(&untraced, &traced, "traced vs untraced");

    // Transparency must not come from inactivity: every ticket has a
    // rooted causal trace whose root span *is* its reported latency.
    let spans = obs.spans_snapshot();
    assert!(!spans.is_empty(), "traced run recorded no spans");
    assert_eq!(obs.spans_dropped(), 0, "uncapped run must drop nothing");
    let forest = TraceForest::from_spans(&spans);
    assert_eq!(traced_report.records.len(), GOLDEN_QUERIES);
    for r in &traced_report.records {
        let tid = r.ticket as u64 + 1;
        let root = forest
            .root(tid)
            .unwrap_or_else(|| panic!("ticket {} has no trace root", r.ticket));
        assert_eq!(root.name, "ticket");
        assert!(
            (root.duration_secs() - r.latency_secs).abs() < 1e-9,
            "ticket {}: root span duration != reported latency",
            r.ticket
        );
        assert!(
            forest.all_reachable_from_root(tid),
            "ticket {}: orphaned spans",
            r.ticket
        );
    }
}

#[test]
fn span_cap_drops_spans_without_perturbing_the_run() {
    let full_obs = Observer::new(ObsConfig::on());
    let full = fingerprint(&serve_with(full_obs.clone()));
    let full_spans = full_obs.spans_snapshot();
    assert!(full_spans.len() > 40, "golden serve emits a real span log");

    let cap = 40;
    let capped_obs = Observer::new(ObsConfig::on().with_span_cap(cap));
    let capped = fingerprint(&serve_with(capped_obs.clone()));

    // The cap is record-only: answers, digests and timings are untouched.
    assert_identical(&full, &capped, "capped vs uncapped");

    // The cap actually bit, the drops are counted, and what was kept is a
    // deterministic prefix of the uncapped log (span ids are allocated
    // identically; only retention differs).
    let capped_spans = capped_obs.spans_snapshot();
    assert_eq!(capped_spans.len(), cap);
    assert_eq!(
        capped_obs.spans_dropped() as usize,
        full_spans.len() - cap,
        "every span past the cap is counted as dropped"
    );
    assert_eq!(
        &full_spans[..cap],
        &capped_spans[..],
        "capped log must be the uncapped log's prefix"
    );
}
