//! Cross-crate integration tests: the whole DeepSea stack (workload →
//! engine → core) must produce correct query answers under every policy, and
//! the pool must obey its invariants on realistic workloads.

use std::sync::Arc;

use deepsea::bench::harness::{run_variants, run_workload};
use deepsea::core::{baselines, driver::DeepSea};
use deepsea::engine::Catalog;
use deepsea::workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea::workload::sequences::{fig5_workload, fixed_template_workload};
use deepsea::workload::{Selectivity, Skew, TemplateId};

fn catalog(seed: u64) -> Catalog {
    BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, seed).catalog
}

/// Every template, several ranges, answered by DeepSea (with all the
/// materialization and rewriting machinery) must return exactly what vanilla
/// execution returns.
#[test]
fn deepsea_answers_equal_hive_answers_for_every_template() {
    let mut ds = DeepSea::new(catalog(21), baselines::deepsea());
    let mut hive = DeepSea::new(catalog(21), baselines::hive());
    for t in TemplateId::all() {
        for (lo, hi) in [(1_000, 3_000), (1_500, 2_500), (900, 3_100), (0, 39_999)] {
            let plan = t.instantiate(lo, hi);
            let a = ds.process_query(&plan).expect("deepsea run");
            let b = hive.process_query(&plan).expect("hive run");
            assert_eq!(
                a.result.fingerprint(),
                b.result.fingerprint(),
                "{t:?} [{lo},{hi}] must match vanilla execution (used_view={:?})",
                a.used_view
            );
        }
    }
    // The workload above repeats ranges per template, so reuse must happen.
    assert!(ds.pool_bytes() > 0, "DeepSea materialized something");
}

/// Same equivalence under the equi-depth and Nectar baselines, and under
/// strictly horizontal repartitioning.
#[test]
fn all_policies_preserve_query_answers() {
    let configs = [
        baselines::non_partitioned(),
        baselines::equi_depth(7),
        baselines::nectar(),
        baselines::nectar_plus(),
        baselines::no_repartitioning(),
        baselines::horizontal_only(),
        baselines::deepsea_no_mle(),
    ];
    let plans = fixed_template_workload(TemplateId::Q30, 8, Selectivity::Medium, Skew::Heavy, 31);
    let mut hive = DeepSea::new(catalog(31), baselines::hive());
    let expected: Vec<_> = plans
        .iter()
        .map(|p| hive.process_query(p).unwrap().result.fingerprint())
        .collect();
    for cfg in configs {
        let mut sys = DeepSea::new(catalog(31), cfg);
        for (plan, want) in plans.iter().zip(&expected) {
            let got = sys.process_query(plan).expect("query runs");
            assert_eq!(
                &got.result.fingerprint(),
                want,
                "policy {cfg:?} changed a query answer"
            );
        }
    }
}

/// The pool never exceeds `Smax`, across a mixed workload with eviction
/// churn.
#[test]
fn pool_limit_invariant_on_mixed_workload() {
    let cat = catalog(41);
    let smax = cat.total_base_bytes() / 20; // 5% — heavy pressure
    let cfg = baselines::deepsea().with_phi(0.05).with_smax(smax);
    let mut ds = DeepSea::new(cat, cfg);
    for plan in fig5_workload(40, 41) {
        ds.process_query(&plan).expect("query runs");
        assert!(
            ds.pool_bytes() <= smax,
            "pool {} exceeded Smax {smax}",
            ds.pool_bytes()
        );
    }
}

/// Simulated-time orderings the paper reports must hold end to end:
/// DS < NP < H on a reuse-friendly skewed workload.
#[test]
fn baseline_ordering_ds_np_hive() {
    let cat = Arc::new(catalog(51));
    let plans = fixed_template_workload(TemplateId::Q30, 12, Selectivity::Small, Skew::Heavy, 51);
    let runs = run_variants(
        &cat,
        &[
            ("H", baselines::hive()),
            ("NP", baselines::non_partitioned()),
            ("DS", baselines::deepsea()),
        ],
        &plans,
    );
    let h = runs[0].total_secs();
    let np = runs[1].total_secs();
    let ds = runs[2].total_secs();
    assert!(np < h, "NP {np} must beat Hive {h}");
    assert!(ds < np, "DS {ds} must beat NP {np}");
}

/// Simulated times are deterministic: two identical runs agree exactly.
#[test]
fn runs_are_deterministic() {
    let cat = Arc::new(catalog(61));
    let plans = fixed_template_workload(TemplateId::Q9, 6, Selectivity::Medium, Skew::Light, 61);
    let a = run_workload("DS", &cat, baselines::deepsea(), &plans);
    let b = run_workload("DS", &cat, baselines::deepsea(), &plans);
    assert_eq!(a.per_query, b.per_query);
}

/// Evicted fragments really disappear from the simulated FS (no leaks), and
/// the registry's pool accounting matches the FS contents.
#[test]
fn registry_accounting_matches_fs() {
    let cat = catalog(71);
    let smax = cat.total_base_bytes() / 10;
    let cfg = baselines::deepsea().with_phi(0.05).with_smax(smax);
    let mut ds = DeepSea::new(cat, cfg);
    for plan in fig5_workload(30, 71) {
        ds.process_query(&plan).expect("query runs");
        assert_eq!(
            ds.pool_bytes(),
            ds.fs().total_bytes(),
            "registry bytes must equal FS bytes"
        );
    }
}
