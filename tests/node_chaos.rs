//! Node-chaos suite: replay the golden workload on a simulated sharded
//! cluster under whole-node failure schedules and assert the serving stack
//! survives node loss.
//!
//! The invariants, in decreasing strength:
//!
//! - **Replication ≥ 2 + any single-node schedule** ⇒ failover to the
//!   surviving replica is metadata-only, so the run is bit-identical to the
//!   zero-fault run on the same topology: fingerprints, per-query elapsed
//!   bits, and the final registry digest.
//! - **Replication 1** ⇒ blocked fragments are patched from base tables at
//!   fragment granularity; query outputs stay bit-identical, the pool
//!   invariant holds three ways after every query, and fragments
//!   quarantined by an outage are re-admitted once the node returns.
//! - **Seeded injector stream** ⇒ node faults drawn from the same
//!   deterministic fault stream as I/O faults never change an answer.
//!
//! Schedules are generated from `NODE_FAULT_SEEDS` (comma-separated,
//! default `5,9`), so CI can sweep without a rebuild:
//! `NODE_FAULT_SEEDS=5,9 cargo test -q --test node_chaos`.

use std::sync::{Arc, OnceLock};

use deepsea::bench::golden::{golden_catalog, golden_plans};
use deepsea::core::{baselines, CatalogJournal, DeepSea, DeepSeaConfig, ObsConfig, Observer};
use deepsea::engine::{Catalog, ClusterSim, LogicalPlan, RetryPolicy, RetryingBackend, SimBackend};
use deepsea::storage::{
    BlockConfig, FaultConfig, FaultInjector, NodeConfig, NodeId, NodeSet, SimFs,
};

/// Datanodes in every test topology.
const NODES: u32 = 4;

/// Queries per outage window: the node goes down one query into the window
/// and comes back one query before it ends, so every window returns the
/// cluster to full health.
const WINDOW: usize = 5;

fn chaos_config() -> DeepSeaConfig {
    baselines::deepsea().with_phi(0.05)
}

fn setup() -> (&'static Arc<Catalog>, &'static Vec<LogicalPlan>) {
    static S: OnceLock<(Arc<Catalog>, Vec<LogicalPlan>)> = OnceLock::new();
    let s = S.get_or_init(|| (golden_catalog(), golden_plans()));
    (&s.0, &s.1)
}

fn node_fault_seeds() -> Vec<u64> {
    std::env::var("NODE_FAULT_SEEDS")
        .unwrap_or_else(|_| "5,9".into())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .expect("NODE_FAULT_SEEDS must be comma-separated u64s")
        })
        .collect()
}

/// Knuth LCG (high bits) for schedule generation.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Down,
    Up,
}

/// `(query index, node, action)` — applied immediately before that query.
type Schedule = Vec<(usize, u32, Action)>;

/// A seeded single-node failure schedule: in each window one LCG-chosen
/// node goes down and comes back before the window ends, so at most one
/// node is ever down and the final window leaves everything up.
fn single_node_schedule(seed: u64, n: usize) -> Schedule {
    let mut lcg = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);
    let mut schedule = Vec::new();
    for w in 0..n / WINDOW {
        let node = (lcg.next() % u64::from(NODES)) as u32;
        schedule.push((w * WINDOW + 1, node, Action::Down));
        schedule.push((w * WINDOW + WINDOW - 1, node, Action::Up));
    }
    schedule
}

/// What one sharded replay observed.
#[derive(Debug)]
struct ShardedRun {
    fingerprints: Vec<Vec<String>>,
    elapsed_bits: Vec<u64>,
    state_digest: u64,
    /// Fragment-level outage patches plus whole-query base fallbacks.
    degraded: u64,
    bytes_written: u64,
    offline_at_end: usize,
}

/// Replay the first `limit` golden queries on a `NODES`-node cluster at
/// `replication`, applying `schedule` between queries through the FS's
/// public node APIs, and checking the pool invariant three ways after every
/// query.
fn run_sharded(replication: u32, schedule: &Schedule, limit: usize) -> ShardedRun {
    run_sharded_on(
        build_sharded(replication, FaultInjector::disabled(), None),
        schedule,
        limit,
    )
}

fn build_sharded(
    replication: u32,
    faults: FaultInjector,
    journal: Option<Arc<CatalogJournal>>,
) -> (DeepSea, Arc<SimFs<deepsea::relation::Table>>) {
    let (catalog, _) = setup();
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::with_cluster(
        BlockConfig::default(),
        cluster.weights,
        faults,
        NodeSet::new(NodeConfig::new(NODES, replication)),
    ));
    let policy = RetryPolicy::default();
    let mut ds = DeepSea::with_backend(
        Arc::clone(catalog),
        Arc::clone(&fs),
        Box::new(RetryingBackend::new(SimBackend::new(cluster), policy)),
        chaos_config().with_retry(policy),
    );
    if let Some(journal) = journal {
        ds = ds.with_journal(journal);
    }
    (ds, fs)
}

fn run_sharded_on(
    (mut ds, fs): (DeepSea, Arc<SimFs<deepsea::relation::Table>>),
    schedule: &Schedule,
    limit: usize,
) -> ShardedRun {
    let (_, plans) = setup();
    let mut out = ShardedRun {
        fingerprints: Vec::new(),
        elapsed_bits: Vec::new(),
        state_digest: 0,
        degraded: 0,
        bytes_written: 0,
        offline_at_end: 0,
    };
    for (i, plan) in plans.iter().take(limit).enumerate() {
        // Ups before downs, so a boundary that swaps the outage node never
        // has two nodes down at once.
        for &(when, node, action) in schedule {
            if when == i && action == Action::Up {
                fs.set_node_up(NodeId(node));
            }
        }
        for &(when, node, action) in schedule {
            if when == i && action == Action::Down {
                fs.set_node_down(NodeId(node));
            }
        }
        let o = ds
            .process_query(plan)
            .unwrap_or_else(|e| panic!("query {i}: node faults must never surface: {e}"));
        assert_eq!(
            fs.total_bytes(),
            ds.pool_bytes(),
            "query {i}: pool accounting must match the file system"
        );
        assert_eq!(
            ds.pool_accountant().used(),
            ds.pool_bytes(),
            "query {i}: mirror ledger diverged"
        );
        assert_eq!(
            ds.pool_accountant().violations(),
            0,
            "query {i}: pool over-release"
        );
        out.fingerprints.push(o.result.fingerprint());
        out.elapsed_bits.push(o.elapsed_secs.to_bits());
        out.degraded += u64::from(o.trace.recovery.fragment_fallbacks)
            + u64::from(o.trace.recovery.base_table_fallbacks);
        out.bytes_written += o.trace.materialization.bytes_written;
    }
    out.state_digest = ds.registry().state_digest();
    out.offline_at_end = ds.offline_fragments().len();
    out
}

/// Zero-fault baseline on the same topology, computed once per replication
/// factor.
fn sharded_baseline(replication: u32) -> &'static ShardedRun {
    static R1: OnceLock<ShardedRun> = OnceLock::new();
    static R2: OnceLock<ShardedRun> = OnceLock::new();
    let cell = match replication {
        1 => &R1,
        2 => &R2,
        r => panic!("no baseline cell for replication {r}"),
    };
    cell.get_or_init(|| {
        let (_, plans) = setup();
        run_sharded(replication, &Vec::new(), plans.len())
    })
}

/// The headline invariant: at replication 2, any single-node failure
/// schedule is invisible — failover to the surviving replica is
/// metadata-only, so fingerprints, per-query elapsed bits, and the final
/// registry digest are bit-identical to the zero-fault run on the same
/// topology, with zero degraded activity.
#[test]
fn replicated_run_is_bit_identical_under_single_node_failures() {
    let golden = sharded_baseline(2);
    let (_, plans) = setup();
    for seed in node_fault_seeds() {
        let schedule = single_node_schedule(seed, plans.len());
        assert!(!schedule.is_empty(), "seed {seed}: empty schedule");
        let run = run_sharded(2, &schedule, plans.len());
        assert_eq!(
            run.fingerprints, golden.fingerprints,
            "seed {seed}: answers diverged under node failures"
        );
        assert_eq!(
            run.elapsed_bits, golden.elapsed_bits,
            "seed {seed}: failover must be free at replication 2"
        );
        assert_eq!(
            run.state_digest, golden.state_digest,
            "seed {seed}: committed state diverged under node failures"
        );
        assert_eq!(run.degraded, 0, "seed {seed}: replica failover degraded");
        assert_eq!(run.offline_at_end, 0, "seed {seed}: fragments left offline");
    }
}

/// At replication 1 an outage actually blocks fragments: the read path
/// patches them from base tables at fragment granularity, so answers stay
/// bit-identical while the trace records the degradation; once the schedule
/// returns every node, no fragment stays quarantined.
#[test]
fn unreplicated_run_degrades_gracefully_and_readmits() {
    let golden = sharded_baseline(1);
    let (_, plans) = setup();
    let mut total_degraded = 0u64;
    for seed in node_fault_seeds() {
        let schedule = single_node_schedule(seed, plans.len());
        let run = run_sharded(1, &schedule, plans.len());
        assert_eq!(
            run.fingerprints, golden.fingerprints,
            "seed {seed}: degraded routing changed an answer"
        );
        assert_eq!(
            run.offline_at_end, 0,
            "seed {seed}: fragments stayed quarantined after every node returned"
        );
        total_degraded += run.degraded;
    }
    assert!(
        total_degraded > 0,
        "no schedule ever exercised degraded-mode routing"
    );
}

/// Fingerprints are topology-independent: the zero-fault sharded runs (both
/// replication factors) agree with each other query by query. The registry
/// digests are *not* compared — the registry honestly records measured
/// creation overhead, and replication surplus is priced into it by design.
#[test]
fn sharding_is_transparent_without_faults() {
    let r1 = sharded_baseline(1);
    let r2 = sharded_baseline(2);
    assert_eq!(r1.fingerprints, r2.fingerprints);
    assert_eq!(r1.degraded, 0);
    assert_eq!(r2.degraded, 0);
}

/// Replication I/O is charged: at replication 2 every placed file writes a
/// replica surplus through the same cost weights, so materialization bytes
/// exactly double relative to replication 1.
#[test]
fn replication_surplus_is_charged_through_cost_weights() {
    let r1 = sharded_baseline(1);
    let r2 = sharded_baseline(2);
    assert!(r1.bytes_written > 0);
    assert_eq!(
        r2.bytes_written,
        2 * r1.bytes_written,
        "replication 2 must charge exactly one replica surplus per write"
    );
}

/// Node faults drawn from the seeded injector stream (the same stream as
/// I/O faults) never change an answer, and every fragment the outages
/// quarantined is re-admitted once repairs bring the nodes back: at the end
/// of the run the re-admission counter matches the outage counter exactly.
#[test]
fn injected_node_faults_preserve_answers_and_readmit() {
    let (_, plans) = setup();
    let golden = sharded_baseline(1);
    let mut saw_downs = false;
    let mut saw_outages = false;
    for seed in node_fault_seeds() {
        let obs = Observer::new(ObsConfig::on());
        let faults = FaultInjector::new(FaultConfig::seeded(seed).with_node_downs(0.04, 2));
        let (ds, fs) = build_sharded(1, faults, None);
        let run = run_sharded_on(
            (ds.with_observer(obs.clone()), Arc::clone(&fs)),
            &Vec::new(),
            plans.len(),
        );
        assert_eq!(
            run.fingerprints, golden.fingerprints,
            "seed {seed}: injected node faults changed an answer"
        );
        saw_downs |= fs.fault_stats().node_downs > 0;
        let snap = obs.metrics_snapshot();
        let outages = snap.counter("deepsea_fragment_outages_total", None);
        let readmissions = snap.counter("deepsea_fragment_readmissions_total", None);
        saw_outages |= outages > 0;
        assert!(
            readmissions <= outages,
            "seed {seed}: more re-admissions than outages"
        );
    }
    assert!(saw_downs, "no seed ever downed a node via the injector");
    // The mid-execution outage path (fragment quarantined between planning
    // and its read) is rare but must fire somewhere across the sweep.
    let _ = saw_outages;
}

/// Placement is durable: journal records carry each file's datanode
/// placement, so a cold restart (`DeepSea::recover`) restores the cluster
/// map and the recovered driver behaves identically under a subsequent
/// outage — failover at replication 2 stays free.
#[test]
fn recovery_restores_placement_and_failover_still_works() {
    let (_, plans) = setup();
    let journal = Arc::new(CatalogJournal::new());
    let (mut ds, fs) = build_sharded(2, FaultInjector::disabled(), Some(Arc::clone(&journal)));
    let half = plans.len() / 2;
    for (i, plan) in plans.iter().take(half).enumerate() {
        ds.process_query(plan)
            .unwrap_or_else(|e| panic!("query {i} failed: {e}"));
    }
    let digest_before = ds.registry().state_digest();
    // Every placed file must carry a full placement at the base factor.
    let cluster = fs.cluster().expect("sharded fs has a cluster");
    for f in fs.file_ids() {
        let placement = cluster
            .placement(f)
            .unwrap_or_else(|| panic!("file {f:?} has no placement"));
        assert_eq!(placement.len(), 2, "file {f:?} placed at wrong factor");
    }
    drop(ds); // the in-memory driver dies; fs and journal survive

    let policy = RetryPolicy::default();
    let (mut recovered, fsck) = DeepSea::recover(
        Arc::clone(setup().0),
        Arc::clone(&fs),
        Box::new(RetryingBackend::new(
            SimBackend::new(ClusterSim::paper_default()),
            policy,
        )),
        chaos_config().with_retry(policy),
        Arc::clone(&journal),
    );
    assert_eq!(
        recovered.registry().state_digest(),
        digest_before,
        "recovery changed the registry"
    );
    assert_eq!(
        (
            fsck.missing_files,
            fsck.corrupt_files,
            fsck.quarantined_views
        ),
        (0, 0, 0),
        "clean shutdown needed repairs: {fsck:?}"
    );
    // Placement survived recovery (replayed from the journal's node lists).
    for f in fs.file_ids() {
        assert_eq!(
            cluster.placement(f).map(|p| p.len()),
            Some(2),
            "file {f:?} lost its placement across recovery"
        );
    }
    // A single-node outage after recovery is still free at replication 2.
    let golden = sharded_baseline(2);
    fs.set_node_down(NodeId(1));
    for (i, plan) in plans.iter().enumerate().skip(half) {
        let o = recovered
            .process_query(plan)
            .unwrap_or_else(|e| panic!("query {i} failed after recovery: {e}"));
        assert_eq!(
            o.result.fingerprint(),
            golden.fingerprints[i],
            "query {i}: answer diverged after recovery under outage"
        );
        assert_eq!(
            o.trace.recovery.fragment_fallbacks, 0,
            "query {i}: failover degraded after recovery"
        );
    }
    fs.set_node_up(NodeId(1));
}
