//! Quickstart: create a BigBench-like instance, run a handful of queries
//! through DeepSea, and watch views get materialized, partitioned, and
//! reused.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use deepsea::core::{baselines, driver::DeepSea};
use deepsea::workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea::workload::TemplateId;

fn main() {
    // A "100 GB" instance: scaled-down rows, cluster-scale simulated bytes.
    let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 42);
    println!(
        "instance: {:.0} GB simulated across {} tables\n",
        data.catalog.total_base_bytes() as f64 / 1e9,
        data.catalog.iter().count()
    );

    let mut ds = DeepSea::new(data.catalog, baselines::deepsea());

    // Ten Q30 queries ("revenue per category for items in a range"): a hot
    // range queried repeatedly, with one exploratory poke at query 6.
    for i in 0..10 {
        let (lo, hi) = if i == 5 {
            (7_600, 8_900) // exploratory, wider
        } else {
            (8_000, 8_400) // the hot range
        };
        let plan = TemplateId::Q30.instantiate(lo, hi);
        let out = ds.process_query(&plan).expect("query runs");
        println!(
            "Q30_{:<2} [{lo:>5},{hi:>5}]  {:>7.1}s (exec {:>6.1}s + create {:>5.1}s)  \
             rows={:<3} via={}  +{} new, -{} evicted",
            i + 1,
            out.elapsed_secs,
            out.query_secs,
            out.creation_secs,
            out.result.len(),
            out.used_view.as_deref().unwrap_or("base tables"),
            out.materialized.len(),
            out.evicted.len(),
        );
    }

    println!("\npool: {:.2} GB simulated", ds.pool_bytes() as f64 / 1e9);
    for view in ds.registry().iter().filter(|v| v.is_materialized()) {
        println!(
            "  {}: {:.2} GB, benefit events {}, partitions: {}",
            view.name,
            view.stats.size as f64 / 1e9,
            view.stats.events.len(),
            view.partitions
                .values()
                .map(|p| format!(
                    "{} [{} fragments, {} materialized]",
                    p.attr,
                    p.fragments.len(),
                    p.materialized().len()
                ))
                .collect::<Vec<_>>()
                .join("; "),
        );
    }
}
