//! Demonstrates *overlapping partitioning* (§3 / Figure 3 / §10.4): when the
//! workload's upper bound creeps forward, strictly horizontal repartitioning
//! must rewrite the untouched cold remainder, while overlapping partitioning
//! only writes the small new fragment.
//!
//! ```sh
//! cargo run --release --example overlapping_fragments
//! ```

use std::sync::Arc;

use deepsea::bench::harness::run_workload;
use deepsea::core::baselines;
use deepsea::workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea::workload::sequences::fig9_workload;

fn main() {
    let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 5);
    let catalog = Arc::new(data.catalog);
    // The Figure 9 workload: Q30 ×30, 1% selectivity, the range midpoint
    // jumps every ten queries (20k → 40k → 60k in the paper's domain).
    let plans = fig9_workload(5);

    for (label, cfg) in [
        ("horizontal", baselines::horizontal_only()),
        ("overlapping", baselines::deepsea()),
    ] {
        let r = run_workload(label, &catalog, cfg, &plans);
        let creation: f64 = r.per_query.iter().map(|q| q.creation).sum();
        println!(
            "{label:<12}  total {:>7.1}s   repartitioning overhead {:>6.1}s   pool {:>5.2} GB",
            r.total_secs(),
            creation,
            r.final_pool_bytes as f64 / 1e9,
        );
    }
    println!();
    println!("Overlapping partitioning skips rewriting the cold remainder each time");
    println!("the pattern shifts — the pool holds slightly more bytes (the old");
    println!("fragments stay), but the workload finishes sooner.");
}
