//! Regenerates the golden sequences asserted by `tests/golden_pipeline.rs`.
//!
//! Run after an *intentional* behaviour change in the query-lifecycle
//! pipeline and paste the printed arrays into the test:
//!
//! ```sh
//! cargo run --release --example golden_capture
//! ```

use deepsea::bench::golden::{golden_catalog, golden_plans, golden_variants};
use deepsea::bench::harness::run_workload;

fn main() {
    let catalog = golden_catalog();
    let plans = golden_plans();
    for (label, cfg) in golden_variants(&catalog) {
        let r = run_workload(label, &catalog, cfg, &plans);
        let ident = label.replace('-', "_").to_uppercase();
        println!("const {ident}_ELAPSED: [f64; {}] = [", r.per_query.len());
        for chunk in r.per_query.chunks(4) {
            let row: Vec<String> = chunk.iter().map(|q| format!("{:?},", q.elapsed)).collect();
            println!("    {}", row.join(" "));
        }
        println!("];");
        let mat: Vec<String> = r
            .per_query
            .iter()
            .map(|q| q.materialized.to_string())
            .collect();
        println!(
            "const {ident}_MATERIALIZED: [usize; {}] = [{}];",
            r.per_query.len(),
            mat.join(", ")
        );
        let ev: Vec<String> = r.per_query.iter().map(|q| q.evicted.to_string()).collect();
        println!(
            "const {ident}_EVICTED: [usize; {}] = [{}];",
            r.per_query.len(),
            ev.join(", ")
        );
        println!(
            "// {label}: total {:.1}s, final pool {} bytes",
            r.total_secs(),
            r.final_pool_bytes
        );
        println!();
    }
}
