//! The paper's motivating scenario: an exploratory astronomy workload whose
//! access pattern drifts over time (SDSS, Figures 1–2). DeepSea's decayed
//! benefits let the pool follow the drift: fragments serving the old hot spot
//! get evicted as the new one heats up.
//!
//! ```sh
//! cargo run --release --example sdss_exploration
//! ```

use deepsea::core::{baselines, driver::DeepSea};
use deepsea::workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea::workload::sdss::{sdss_like_histogram, SdssTrace};
use deepsea::workload::sequences::item_domain;
use deepsea::workload::TemplateId;

fn main() {
    let (lo, hi) = item_domain();
    // Data whose item popularity follows the SDSS ra histogram, like §10.1.
    let hist = sdss_like_histogram(lo, hi);
    let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Histogram(hist), 7);

    // A drifting trace: early queries browse one region, later ones another.
    let trace = SdssTrace::new(lo, hi).generate(120, 7);

    // Bounded pool: 10% of the base tables — eviction pressure is real.
    let smax = data.catalog.total_base_bytes() / 10;
    let cfg = baselines::deepsea().with_phi(0.05).with_smax(smax);
    let mut ds = DeepSea::new(data.catalog, cfg);

    let mut window_elapsed = 0.0;
    let mut window_reuse = 0;
    for (i, (l, h)) in trace.iter().enumerate() {
        let out = ds
            .process_query(&TemplateId::Q9.instantiate(*l, *h))
            .expect("query runs");
        window_elapsed += out.elapsed_secs;
        window_reuse += usize::from(out.used_view.is_some());
        if (i + 1) % 20 == 0 {
            println!(
                "queries {:>3}–{:>3}: {:>8.1}s total, {:>2}/20 reused, pool {:>5.2} GB",
                i - 18,
                i + 1,
                window_elapsed,
                window_reuse,
                ds.pool_bytes() as f64 / 1e9
            );
            window_elapsed = 0.0;
            window_reuse = 0;
        }
    }

    println!(
        "\nfinal pool ({} bytes of {} allowed):",
        ds.pool_bytes(),
        smax
    );
    for view in ds.registry().iter().filter(|v| v.is_materialized()) {
        for ps in view.partitions.values() {
            for (fid, iv) in ps.materialized() {
                let frag = ps.frag(fid).unwrap();
                println!(
                    "  {}.{}{}  {:>7.2} GB  {} hits",
                    view.name,
                    ps.attr,
                    iv,
                    frag.size as f64 / 1e9,
                    frag.stats.raw_hits()
                );
            }
        }
    }
    println!("\nThe surviving fragments cluster around the *current* hot spot —");
    println!("the decay function timed out the benefits of the early region.");
}
