//! Run the same workload under every system variant of the paper and print a
//! comparative table — a miniature of the whole evaluation.
//!
//! ```sh
//! cargo run --release --example strategy_comparison
//! ```

use std::sync::Arc;

use deepsea::bench::harness::run_variants;
use deepsea::bench::report::table;
use deepsea::core::baselines;
use deepsea::workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea::workload::sequences::fixed_template_workload;
use deepsea::workload::{Selectivity, Skew, TemplateId};

fn main() {
    let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 99);
    let catalog = Arc::new(data.catalog);
    let plans = fixed_template_workload(TemplateId::Q30, 15, Selectivity::Small, Skew::Heavy, 99);

    let variants = [
        ("H  (vanilla Hive)", baselines::hive()),
        ("NP (views, no partitioning)", baselines::non_partitioned()),
        ("E-15 (equi-depth)", baselines::equi_depth(15)),
        ("N  (Nectar selection)", baselines::nectar()),
        ("N+ (Nectar + accumulation)", baselines::nectar_plus()),
        ("NR (no repartitioning)", baselines::no_repartitioning()),
        ("DS (DeepSea)", baselines::deepsea()),
    ];
    let runs = run_variants(&catalog, &variants, &plans);

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let reused = r.per_query.iter().filter(|q| q.used_view).count();
            vec![
                r.label.clone(),
                format!("{:.1}", r.total_secs()),
                format!("{:.1}", r.per_query.iter().map(|q| q.creation).sum::<f64>()),
                format!("{reused}/{}", r.per_query.len()),
                format!("{:.2}", r.final_pool_bytes as f64 / 1e9),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "variant",
                "total (s)",
                "creation (s)",
                "reused",
                "pool (GB)"
            ],
            &rows
        )
    );
    let h = runs[0].total_secs();
    let ds = runs.last().unwrap().total_secs();
    println!(
        "DeepSea runs this workload in {:.0}% of Hive's time.",
        100.0 * ds / h
    );
}
