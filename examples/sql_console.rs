//! Drive DeepSea with SQL text — the full Figure-4 pipeline: SQL → plan →
//! view/partition matching → rewriting → execution, with EXPLAIN output
//! showing the rewrite taking effect.
//!
//! ```sh
//! cargo run --release --example sql_console
//! ```

use deepsea::core::{baselines, driver::DeepSea};
use deepsea::engine::explain::explain;
use deepsea::engine::sql::parse;
use deepsea::workload::schema::{BigBenchData, InstanceSize, ItemDistribution};

fn main() {
    let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 1);
    let mut ds = DeepSea::new(data.catalog, baselines::deepsea());

    let queries = [
        // Two nearly identical revenue queries: the second reuses fragments
        // the first created.
        "SELECT i.i_category, SUM(ss.ss_net_paid) AS revenue \
         FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk \
         WHERE ss.ss_item_sk BETWEEN 12000 AND 12400 GROUP BY i.i_category",
        "SELECT i.i_category, SUM(ss.ss_net_paid) AS revenue \
         FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk \
         WHERE ss.ss_item_sk BETWEEN 12050 AND 12350 GROUP BY i.i_category",
        // A different shape over the same base data.
        "SELECT c.c_age_group, SUM(ss.ss_quantity) AS qty \
         FROM store_sales ss JOIN customer c ON ss.ss_customer_sk = c.c_customer_sk \
         WHERE ss.ss_item_sk BETWEEN 12000 AND 12400 GROUP BY c.c_age_group",
    ];

    for (i, sql) in queries.iter().enumerate() {
        println!("─── query {} ───\n{sql}\n", i + 1);
        let plan = parse(sql).expect("valid SQL");
        println!("plan:\n{}", explain(&plan));
        let out = ds.process_query(&plan).expect("runs");
        println!(
            "→ {:.1}s simulated, {} rows, via {}\n",
            out.elapsed_secs,
            out.result.len(),
            out.used_view.as_deref().unwrap_or("base tables"),
        );
    }
}
