//! # deepsea
//!
//! Facade crate for the DeepSea reproduction — re-exports the workspace
//! crates so examples and integration tests can use one dependency:
//!
//! - [`storage`] — simulated HDFS (blocks, read/write cost weights, pool
//!   accounting),
//! - [`relation`] — values, schemas, tables, predicates, data generators,
//! - [`engine`] — logical plans, executor, MapReduce cluster simulator,
//!   cost estimator, Goldstein–Larson signatures, rewriting,
//! - [`core`] — the paper's contribution: progressive workload-aware
//!   partitioning of materialized views (Algorithm 1 driver, Definition 6/7
//!   candidates, Algorithm 2 matching, decay/Φ statistics, MLE fragment
//!   model, Φ-ranked selection, baselines),
//! - [`workload`] — BigBench-like schema/templates and SDSS-like traces,
//! - [`obs`] — observability: metrics, decision events, causal span traces
//!   with critical-path analysis and Chrome-trace rendering,
//! - [`mod@bench`] — the experiment harness regenerating every figure.
//!
//! ## Quickstart
//!
//! ```
//! use deepsea::core::{baselines, driver::DeepSea};
//! use deepsea::workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
//! use deepsea::workload::TemplateId;
//!
//! let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 42);
//! let mut ds = DeepSea::new(data.catalog, baselines::deepsea());
//! let out = ds.process_query(&TemplateId::Q30.instantiate(1_000, 1_400)).unwrap();
//! assert!(out.elapsed_secs > 0.0);
//! ```

pub use deepsea_bench as bench;
pub use deepsea_core as core;
pub use deepsea_engine as engine;
pub use deepsea_obs as obs;
pub use deepsea_relation as relation;
pub use deepsea_storage as storage;
pub use deepsea_workload as workload;
